#include "obs/trace.h"

#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json.h"

namespace kgacc::obs {

namespace {

struct TraceEvent {
  const char* name;   ///< static storage (string literal).
  uint64_t start_ns;  ///< absolute MonotonicNanos at span start.
  uint64_t dur_ns;    ///< 0 for counter events.
  double counter_value = 0.0;
  bool is_counter = false;
};

/// Cap per thread so a forgotten session cannot grow without bound (~8M
/// events across 16 threads ≈ 400 MB worst case; real campaigns emit a few
/// thousand).
constexpr size_t kMaxEventsPerThread = 1 << 19;

/// One buffer per thread that ever emitted an event. The mutex only guards
/// against the exporter; the owning thread is the sole appender.
struct ThreadTraceBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  uint64_t tid = 0;
  char track_name[32] = {0};
};

struct TraceGlobals {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  uint64_t session_start_ns = 0;
  uint64_t next_tid = 1;
};

TraceGlobals& Globals() {
  static auto* globals = new TraceGlobals();
  return *globals;
}

thread_local char t_track_name[32] = {0};

ThreadTraceBuffer& LocalBuffer() {
  thread_local const std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    auto created = std::make_shared<ThreadTraceBuffer>();
    TraceGlobals& globals = Globals();
    std::lock_guard<std::mutex> lock(globals.mutex);
    created->tid = globals.next_tid++;
    std::memcpy(created->track_name, t_track_name, sizeof(t_track_name));
    globals.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

}  // namespace

void SetThreadTrackName(const char* name) {
  std::strncpy(t_track_name, name, sizeof(t_track_name) - 1);
  t_track_name[sizeof(t_track_name) - 1] = '\0';
}

void TraceSession::Start() {
  if constexpr (!kMetricsCompiledIn) return;
  TraceGlobals& globals = Globals();
  {
    std::lock_guard<std::mutex> lock(globals.mutex);
    globals.session_start_ns = MonotonicNanos();
    for (const auto& buffer : globals.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->events.clear();
    }
  }
  internal::SetObsModeBit(kModeTrace, true);
}

void TraceSession::Stop() { internal::SetObsModeBit(kModeTrace, false); }

bool TraceSession::Active() { return (ObsMode() & kModeTrace) != 0; }

uint64_t TraceSession::EventCount() {
  TraceGlobals& globals = Globals();
  std::lock_guard<std::mutex> lock(globals.mutex);
  uint64_t total = 0;
  for (const auto& buffer : globals.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

namespace internal {

void EmitCompleteEvent(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  ThreadTraceBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) return;
  buffer.events.push_back(TraceEvent{name, start_ns, dur_ns});
}

void EmitCounterEvent(const char* name, double value) {
  ThreadTraceBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) return;
  buffer.events.push_back(
      TraceEvent{name, MonotonicNanos(), 0, value, /*is_counter=*/true});
}

}  // namespace internal

Status TraceSession::WriteJson(const std::string& path) {
  TraceGlobals& globals = Globals();
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("displayTimeUnit").String("ms");
  writer.Key("traceEvents").BeginArray();
  {
    std::lock_guard<std::mutex> lock(globals.mutex);
    const uint64_t t0 = globals.session_start_ns;
    for (const auto& buffer : globals.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      if (buffer->events.empty()) continue;
      // Track metadata first, so Perfetto names the row.
      writer.BeginObject();
      writer.Key("name").String("thread_name");
      writer.Key("ph").String("M");
      writer.Key("pid").Int(1);
      writer.Key("tid").Uint(buffer->tid);
      writer.Key("args").BeginObject();
      writer.Key("name").String(
          buffer->track_name[0] != '\0'
              ? std::string(buffer->track_name)
              : (buffer->tid == 1 ? std::string("main")
                                  : "thread-" + std::to_string(buffer->tid)));
      writer.EndObject();
      writer.EndObject();
      for (const TraceEvent& event : buffer->events) {
        const uint64_t rel_ns =
            event.start_ns >= t0 ? event.start_ns - t0 : 0;
        writer.BeginObject();
        writer.Key("name").String(event.name);
        writer.Key("cat").String("kgacc");
        writer.Key("ph").String(event.is_counter ? "C" : "X");
        // Chrome trace timestamps are microseconds; fractional values keep
        // nanosecond precision.
        writer.Key("ts").Number(static_cast<double>(rel_ns) * 1e-3);
        if (event.is_counter) {
          writer.Key("args").BeginObject();
          writer.Key("value").Number(event.counter_value);
          writer.EndObject();
        } else {
          writer.Key("dur").Number(static_cast<double>(event.dur_ns) * 1e-3);
        }
        writer.Key("pid").Int(1);
        writer.Key("tid").Uint(buffer->tid);
        writer.EndObject();
      }
    }
  }
  writer.EndArray();
  writer.EndObject();

  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << writer.TakeString() << '\n';
  if (!out.good()) return Status::IOError("error writing '" + path + "'");
  return Status::OK();
}

}  // namespace kgacc::obs
