#pragma once

// Process-wide runtime metrics: named counters, gauges and log-bucketed
// latency histograms, designed so instrumentation can sit on the concurrent
// annotation hot path without serializing it:
//
//  - every accumulator is striped across cache-line-padded atomic slots
//    indexed by a per-thread stripe id, written with relaxed ordering, and
//    reduced only at snapshot time — concurrent writers never contend on a
//    line and never take a lock;
//  - histograms bucket durations on a log grid (8 sub-buckets per octave of
//    nanoseconds, pure integer math), giving p50/p95/p99 within one bucket
//    width (≤ 12.5% relative) plus the exact min/max, without ever storing
//    samples;
//  - collection is off by default behind one relaxed atomic flag, so an
//    uninstrumented run pays a load+branch per site; compiling with
//    KGACC_NO_METRICS removes even that.
//
// Hard invariant (pinned by tests/metrics_determinism_test.cc): recording
// metrics never touches an RNG stream, never reorders an annotation, and
// never feeds back into the evaluation — results are bit-identical with
// metrics on, off, or compiled out.
//
// Metric naming convention: `<layer>.<component>.<metric>`, with the unit as
// a suffix (`_seconds` for histograms of durations), e.g.
// `engine.round.sample_seconds`, `annotation.cache.hits`.

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace kgacc::obs {

#ifdef KGACC_NO_METRICS
inline constexpr bool kMetricsCompiledIn = false;
#else
inline constexpr bool kMetricsCompiledIn = true;
#endif

/// Master switch for metric collection (and the cheap half of span
/// recording). Off by default; `kgacc_eval --metrics` and the benches flip
/// it on. Under KGACC_NO_METRICS the switch is compiled to `false`.
void EnableMetrics(bool enabled);
bool MetricsEnabled();

/// Bits of the combined observability mode word: one relaxed atomic load
/// tells an instrumentation site whether metrics collection and/or trace
/// recording is on. kModeMetrics mirrors MetricsEnabled(); kModeTrace
/// mirrors TraceSession::Active() (obs/trace.h).
inline constexpr uint32_t kModeMetrics = 1u << 0;
inline constexpr uint32_t kModeTrace = 1u << 1;
uint32_t ObsMode();

namespace internal {

/// Stripe count for all sharded accumulators. A power of two comfortably
/// above typical worker counts (<= 16), small enough that snapshot reduces
/// stay trivial.
inline constexpr size_t kStripes = 16;

/// This thread's stripe slot, assigned round-robin on first use.
size_t ThreadStripe();

/// Flips one bit of the ObsMode() word (EnableMetrics and TraceSession use
/// this; instrumentation only reads).
void SetObsModeBit(uint32_t bit, bool on);

struct alignas(64) PaddedAtomicU64 {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// Monotonically increasing event count. Add() is a relaxed fetch_add on the
/// caller's stripe; Value() reduces the stripes.
class Counter {
 public:
  void Add(uint64_t n) {
#ifndef KGACC_NO_METRICS
    stripes_[internal::ThreadStripe()].value.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& stripe : stripes_) {
      stripe.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  internal::PaddedAtomicU64 stripes_[internal::kStripes];
};

/// Last-written instantaneous value (queue depths, configuration echoes).
class Gauge {
 public:
  void Set(double value) {
#ifndef KGACC_NO_METRICS
    bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  void Reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  static_assert(sizeof(double) == sizeof(uint64_t));
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

/// The log-bucket grid shared by every histogram. Durations are recorded as
/// nanoseconds; bucket `i` covers `[BucketLowerNanos(i), BucketUpperNanos(i))`.
/// For ns < 8 the buckets are exact single-nanosecond cells; above that each
/// octave splits into 8 linear sub-buckets (HdrHistogram-style), all integer
/// math (no libm on the hot path).
inline constexpr size_t kHistogramBuckets = 8 + 61 * 8;  // ns 0..7, octaves 3..63.

size_t HistogramBucketIndex(uint64_t nanos);
uint64_t BucketLowerNanos(size_t index);
uint64_t BucketUpperNanos(size_t index);

/// Point-in-time reduction of one histogram. Percentiles are bucket
/// midpoints except p100 (`max_seconds`), which is exact.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum_seconds = 0.0;
  double min_seconds = 0.0;  ///< exact; 0 when count == 0.
  double max_seconds = 0.0;  ///< exact; 0 when count == 0.
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;

  struct Bucket {
    size_t index = 0;  ///< grid index (see BucketLowerNanos/BucketUpperNanos).
    uint64_t count = 0;
  };
  std::vector<Bucket> buckets;  ///< non-empty buckets, ascending by index.

  /// The q-quantile (q in [0, 1]) recomputed from the buckets; midpoint of
  /// the bucket holding the rank. 0 when empty.
  double Percentile(double q) const;

  /// Pointwise sum of two snapshots over the shared grid: bucket counts add,
  /// min/max/sum/count combine, percentiles recompute. Associative and
  /// commutative (pinned by tests), so shards/processes can reduce in any
  /// order.
  static HistogramSnapshot Merged(const HistogramSnapshot& a,
                                  const HistogramSnapshot& b);
};

/// Striped log-bucket latency histogram. Record() touches only the caller's
/// stripe (one relaxed fetch_add for the bucket, two for sum/count, CAS loops
/// for the stripe min/max); Snapshot() reduces all stripes.
class Histogram {
 public:
  Histogram();

  /// Records one duration. Negative values clamp to zero.
  void RecordSeconds(double seconds) {
#ifndef KGACC_NO_METRICS
    RecordNanos(seconds <= 0.0 ? 0
                               : static_cast<uint64_t>(seconds * 1e9 + 0.5));
#else
    (void)seconds;
#endif
  }

  void RecordNanos(uint64_t nanos);

  HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_nanos{0};
    std::atomic<uint64_t> min_nanos{UINT64_MAX};
    std::atomic<uint64_t> max_nanos{0};
  };

  Stripe stripes_[internal::kStripes];
  /// Bucket counts, striped: stripe s owns buckets_[s * kHistogramBuckets ..].
  std::vector<std::atomic<uint64_t>> buckets_;
};

/// Everything the registry knew at one instant, ready for kgacc-metrics-v1
/// serialization. Entries are name-sorted.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramSnapshot> histograms;

  const HistogramSnapshot* FindHistogram(std::string_view name) const;
  const CounterValue* FindCounter(std::string_view name) const;
};

/// Name -> metric directory. Lookup takes a mutex, so instrumented code
/// resolves its metrics once (function-local static) and records through the
/// returned pointer, which stays valid for the process lifetime —
/// ResetValues() zeroes values but never invalidates pointers.
class MetricsRegistry {
 public:
  /// The process-wide registry almost all instrumentation uses. Separate
  /// instances exist only for tests.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Reduces every metric; safe while writers are recording (relaxed reads
  /// may miss in-flight updates, never tear).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every value, keeping all registered metrics (and pointers to
  /// them) alive. Benches and tests use this to delimit measurement windows.
  void ResetValues();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Serializes a snapshot as a `kgacc-metrics-v1` JSON document (via
/// util/json's JsonWriter):
///
///   {"schema": "kgacc-metrics-v1",
///    "counters":   [{"name": "...", "value": 123}, ...],
///    "gauges":     [{"name": "...", "value": 1.5}, ...],
///    "histograms": [{"name": "...", "count": 9, "sum_seconds": ...,
///                    "min_seconds": ..., "max_seconds": ...,
///                    "p50_seconds": ..., "p95_seconds": ..., "p99_seconds": ...,
///                    "buckets": [{"le_seconds": 1e-6, "count": 4}, ...]}]}
///
/// `le_seconds` is the bucket's upper bound; buckets are ascending and only
/// non-empty ones are written. kgacc_trace_check validates this schema.
std::string MetricsToJson(const MetricsSnapshot& snapshot);
Status WriteMetricsJson(const std::string& path,
                        const MetricsSnapshot& snapshot);

}  // namespace kgacc::obs
