#include "sampling/srs.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace kgacc {

std::vector<uint64_t> SampleIndicesWithoutReplacement(uint64_t population,
                                                      uint64_t k, Rng& rng) {
  if (k >= population) {
    std::vector<uint64_t> all(population);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  if (k == 0) return {};

  if (k * 3 >= population) {
    // Dense draw: partial Fisher–Yates over an explicit index vector.
    std::vector<uint64_t> indices(population);
    std::iota(indices.begin(), indices.end(), 0);
    for (uint64_t i = 0; i < k; ++i) {
      const uint64_t j = i + rng.UniformIndex(population - i);
      std::swap(indices[i], indices[j]);
    }
    indices.resize(k);
    return indices;
  }

  // Sparse draw: Floyd's algorithm, O(k) expected work and memory.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = population - k; j < population; ++j) {
    const uint64_t t = rng.UniformIndex(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

TriplePrefixIndex::TriplePrefixIndex(const KgView& view) {
  cumulative_.resize(view.NumClusters());
  uint64_t running = 0;
  for (uint64_t i = 0; i < view.NumClusters(); ++i) {
    running += view.ClusterSize(i);
    cumulative_[i] = running;
  }
}

TripleRef TriplePrefixIndex::Lookup(uint64_t global_index) const {
  KGACC_CHECK(global_index < TotalTriples())
      << "global triple index out of range";
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(),
                                   global_index);
  const uint64_t cluster = static_cast<uint64_t>(it - cumulative_.begin());
  const uint64_t before = cluster == 0 ? 0 : cumulative_[cluster - 1];
  return TripleRef{cluster, global_index - before};
}

SrsTripleSampler::SrsTripleSampler(const KgView& view)
    : index_(view), population_(view.TotalTriples()) {}

std::vector<TripleRef> SrsTripleSampler::NextBatch(uint64_t k, Rng& rng) {
  std::vector<TripleRef> batch;
  const uint64_t remaining = population_ - drawn_.size();
  k = std::min(k, remaining);
  batch.reserve(k);
  // Rejection over the shrinking remainder; cheap while the sample is a
  // small fraction of the population (always the case in our experiments).
  // Falls back to scanning when the remainder gets tight.
  uint64_t produced = 0;
  uint64_t attempts = 0;
  const uint64_t max_attempts = 20 * (k + 8);
  while (produced < k && attempts < max_attempts) {
    ++attempts;
    const uint64_t idx = rng.UniformIndex(population_);
    if (drawn_.insert(idx).second) {
      batch.push_back(index_.Lookup(idx));
      ++produced;
    }
  }
  if (produced < k) {
    // Exhaustive completion (population nearly exhausted).
    for (uint64_t idx = 0; idx < population_ && produced < k; ++idx) {
      if (drawn_.insert(idx).second) {
        batch.push_back(index_.Lookup(idx));
        ++produced;
      }
    }
  }
  return batch;
}

}  // namespace kgacc
