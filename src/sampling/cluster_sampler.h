#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "kg/kg_view.h"
#include "sampling/alias_table.h"
#include "util/rng.h"

namespace kgacc {

/// One first-stage cluster draw together with the second-stage triple
/// offsets chosen inside it. RCS/WCS list every offset of the cluster; TWCS
/// lists at most m. A cluster drawn twice (with-replacement designs) yields
/// two independent ClusterDraws.
struct ClusterDraw {
  uint64_t cluster = 0;
  std::vector<uint64_t> offsets;
};

/// Random cluster sampling (Section 5.2.1): clusters drawn uniformly without
/// replacement; all triples of a drawn cluster are evaluated. Successive
/// batches are disjoint.
class RcsSampler {
 public:
  explicit RcsSampler(const KgView& view);

  std::vector<ClusterDraw> NextBatch(uint64_t n, Rng& rng);

  uint64_t NumDrawn() const { return drawn_.size(); }

 private:
  const KgView& view_;
  std::unordered_set<uint64_t> drawn_;
};

/// Weighted cluster sampling (Section 5.2.2): clusters drawn i.i.d. with
/// replacement with probability pi_i = M_i / M; all triples evaluated.
class WcsSampler {
 public:
  explicit WcsSampler(const KgView& view);

  std::vector<ClusterDraw> NextBatch(uint64_t n, Rng& rng);

 private:
  const KgView& view_;
  AliasTable alias_;
};

/// Two-stage weighted cluster sampling (Section 5.2.3): first stage as WCS,
/// second stage an SRS of min(M_i, m) triples without replacement inside
/// each drawn cluster. m = 1 degenerates to SRS (Proposition 2).
class TwcsSampler {
 public:
  TwcsSampler(const KgView& view, uint64_t m);

  std::vector<ClusterDraw> NextBatch(uint64_t n, Rng& rng);

  uint64_t second_stage_size() const { return m_; }

 private:
  const KgView& view_;
  AliasTable alias_;
  uint64_t m_;
};

}  // namespace kgacc
