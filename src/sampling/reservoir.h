#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace kgacc {

/// Uniform reservoir sampling, Vitter's Algorithm R: maintains a uniform
/// without-replacement sample of fixed capacity over a stream.
class UniformReservoirSampler {
 public:
  explicit UniformReservoirSampler(uint64_t capacity);

  /// Offers the next stream item; returns the evicted item when `item`
  /// replaced one, nullopt when `item` was not admitted or filled a free slot.
  std::optional<uint64_t> Offer(uint64_t item, Rng& rng);

  const std::vector<uint64_t>& items() const { return items_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t stream_size() const { return seen_; }

 private:
  uint64_t capacity_;
  uint64_t seen_ = 0;
  std::vector<uint64_t> items_;
};

/// Weighted reservoir sampling, Efraimidis–Spirakis "Algorithm A-Res"
/// (the [14] of the paper, used by Algorithm 1): each offered item gets key
/// u^(1/w) with u ~ U(0,1]; the reservoir keeps the `capacity` items with
/// the largest keys. Inclusion probability grows with weight; the sample is
/// without replacement.
class WeightedReservoirSampler {
 public:
  explicit WeightedReservoirSampler(uint64_t capacity);

  /// What happened when an item was offered.
  struct OfferOutcome {
    bool inserted = false;
    std::optional<uint64_t> evicted;  ///< set when an incumbent was replaced.
  };

  /// Offers an item with the given positive weight.
  OfferOutcome Offer(uint64_t item, double weight, Rng& rng);

  /// Force-inserts an item with an explicit key, growing capacity by one.
  /// Used when the incremental evaluator tops up its sample (Section 6.1's
  /// fallback to static evaluation draws more clusters).
  void GrowAndInsert(uint64_t item, double key);

  /// Smallest key currently in the reservoir (the replacement threshold k_j
  /// in Algorithm 1); +inf when the reservoir has spare capacity.
  double MinKey() const;

  std::vector<uint64_t> Items() const;

  uint64_t size() const { return entries_.size(); }
  uint64_t capacity() const { return capacity_; }

 private:
  struct Entry {
    double key;
    uint64_t item;
  };

  // Min-heap on key: entries_[0] is the eviction candidate.
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  uint64_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace kgacc
