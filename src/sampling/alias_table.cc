#include "sampling/alias_table.h"

#include <vector>

#include "util/logging.h"

namespace kgacc {

AliasTable::AliasTable(const std::vector<double>& weights) {
  KGACC_CHECK(!weights.empty()) << "alias table over empty weights";
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    KGACC_CHECK(w >= 0.0) << "negative weight";
    total += w;
  }
  KGACC_CHECK(total > 0.0) << "alias table needs positive total weight";

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; classify into small/large work lists.
  std::vector<double> scaled(n);
  std::vector<uint64_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const uint64_t s = small.back();
    small.pop_back();
    const uint64_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint64_t i : large) prob_[i] = 1.0;
  for (uint64_t i : small) prob_[i] = 1.0;  // numerical leftovers.
}

AliasTable AliasTable::FromSizes(const std::vector<uint32_t>& sizes) {
  return AliasTable(std::vector<double>(sizes.begin(), sizes.end()));
}

AliasTable AliasTable::FromSizes(const std::vector<uint64_t>& sizes) {
  return AliasTable(std::vector<double>(sizes.begin(), sizes.end()));
}

uint64_t AliasTable::Sample(Rng& rng) const {
  const uint64_t bucket = rng.UniformIndex(prob_.size());
  return rng.UniformDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

double AliasTable::Probability(uint64_t i) const {
  KGACC_CHECK(i < normalized_.size());
  return normalized_[i];
}

}  // namespace kgacc
