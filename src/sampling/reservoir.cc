#include "sampling/reservoir.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace kgacc {

UniformReservoirSampler::UniformReservoirSampler(uint64_t capacity)
    : capacity_(capacity) {
  KGACC_CHECK(capacity_ > 0);
  items_.reserve(capacity_);
}

std::optional<uint64_t> UniformReservoirSampler::Offer(uint64_t item, Rng& rng) {
  ++seen_;
  if (items_.size() < capacity_) {
    items_.push_back(item);
    return std::nullopt;
  }
  const uint64_t j = rng.UniformIndex(seen_);
  if (j < capacity_) {
    const uint64_t evicted = items_[j];
    items_[j] = item;
    return evicted;
  }
  return std::nullopt;
}

WeightedReservoirSampler::WeightedReservoirSampler(uint64_t capacity)
    : capacity_(capacity) {
  KGACC_CHECK(capacity_ > 0);
  entries_.reserve(capacity_);
}

WeightedReservoirSampler::OfferOutcome WeightedReservoirSampler::Offer(
    uint64_t item, double weight, Rng& rng) {
  KGACC_CHECK(weight > 0.0) << "reservoir weights must be positive";
  const double key = std::pow(rng.UniformDoublePositive(), 1.0 / weight);

  OfferOutcome outcome;
  if (entries_.size() < capacity_) {
    entries_.push_back(Entry{key, item});
    SiftUp(entries_.size() - 1);
    outcome.inserted = true;
    return outcome;
  }
  if (key > entries_[0].key) {
    outcome.inserted = true;
    outcome.evicted = entries_[0].item;
    entries_[0] = Entry{key, item};
    SiftDown(0);
  }
  return outcome;
}

void WeightedReservoirSampler::GrowAndInsert(uint64_t item, double key) {
  ++capacity_;
  entries_.push_back(Entry{key, item});
  SiftUp(entries_.size() - 1);
}

double WeightedReservoirSampler::MinKey() const {
  if (entries_.size() < capacity_) {
    return std::numeric_limits<double>::infinity();
  }
  return entries_[0].key;
}

std::vector<uint64_t> WeightedReservoirSampler::Items() const {
  std::vector<uint64_t> items;
  items.reserve(entries_.size());
  for (const Entry& e : entries_) items.push_back(e.item);
  return items;
}

void WeightedReservoirSampler::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (entries_[parent].key <= entries_[i].key) break;
    std::swap(entries_[parent], entries_[i]);
    i = parent;
  }
}

void WeightedReservoirSampler::SiftDown(size_t i) {
  const size_t n = entries_.size();
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = left + 1;
    size_t smallest = i;
    if (left < n && entries_[left].key < entries_[smallest].key) smallest = left;
    if (right < n && entries_[right].key < entries_[smallest].key) {
      smallest = right;
    }
    if (smallest == i) break;
    std::swap(entries_[i], entries_[smallest]);
    i = smallest;
  }
}

}  // namespace kgacc
