#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "kg/kg_view.h"
#include "kg/triple.h"
#include "util/rng.h"

namespace kgacc {

/// Draws `k` distinct indices uniformly from {0..population-1} (simple random
/// sampling without replacement). Uses Floyd's algorithm for sparse draws and
/// a partial Fisher–Yates shuffle when k is a large fraction of the
/// population. Returns all indices when k >= population. Order is random.
std::vector<uint64_t> SampleIndicesWithoutReplacement(uint64_t population,
                                                      uint64_t k, Rng& rng);

/// Maps global triple indices in [0, M) to (cluster, offset) positions via a
/// binary-searchable prefix-sum over cluster sizes. O(N) build, O(log N) per
/// lookup.
class TriplePrefixIndex {
 public:
  explicit TriplePrefixIndex(const KgView& view);

  TripleRef Lookup(uint64_t global_index) const;

  uint64_t TotalTriples() const {
    return cumulative_.empty() ? 0 : cumulative_.back();
  }

 private:
  std::vector<uint64_t> cumulative_;  // cumulative_[i] = sum of sizes 0..i.
};

/// Incremental SRS of triples: successive NextBatch() calls return disjoint
/// simple random samples, so the union of all batches is itself an SRS
/// without replacement — the property the iterative framework (Fig 2)
/// relies on when it keeps enlarging the sample until MoE is met.
class SrsTripleSampler {
 public:
  explicit SrsTripleSampler(const KgView& view);

  /// Draws up to `k` new distinct triples (fewer when the population is
  /// nearly exhausted).
  std::vector<TripleRef> NextBatch(uint64_t k, Rng& rng);

  uint64_t NumDrawn() const { return drawn_.size(); }

 private:
  TriplePrefixIndex index_;
  uint64_t population_;
  std::unordered_set<uint64_t> drawn_;
};

}  // namespace kgacc
