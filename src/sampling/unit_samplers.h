#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "kg/kg_view.h"
#include "sampling/cluster_sampler.h"
#include "sampling/srs.h"
#include "util/rng.h"

namespace kgacc {

/// UnitSampler adapters over the concrete Section 5 samplers, so every design
/// runs through the one EvaluationEngine campaign loop. Each adapter is a
/// thin translation layer: the wrapped sampler owns all randomness and
/// without-replacement bookkeeping.

/// SRS of triples (Section 5.1): one unit per sampled triple.
class SrsUnitSampler : public UnitSampler {
 public:
  explicit SrsUnitSampler(const KgView& view) : sampler_(view) {}

  std::vector<SampleUnit> NextBatch(uint64_t n, Rng& rng) override;
  bool Exhaustible() const override { return true; }

 private:
  SrsTripleSampler sampler_;
};

/// Random cluster sampling (Section 5.2.1): uniform, without replacement;
/// a unit is a whole cluster.
class RcsUnitSampler : public UnitSampler {
 public:
  explicit RcsUnitSampler(const KgView& view) : sampler_(view) {}

  std::vector<SampleUnit> NextBatch(uint64_t n, Rng& rng) override;
  bool Exhaustible() const override { return true; }

 private:
  RcsSampler sampler_;
};

/// Weighted cluster sampling (Section 5.2.2): size-proportional, with
/// replacement; a unit is a whole cluster.
class WcsUnitSampler : public UnitSampler {
 public:
  explicit WcsUnitSampler(const KgView& view) : sampler_(view) {}

  std::vector<SampleUnit> NextBatch(uint64_t n, Rng& rng) override;

 private:
  WcsSampler sampler_;
};

/// Two-stage weighted cluster sampling (Section 5.2.3): a unit is one
/// first-stage draw with its <= m second-stage offsets.
class TwcsUnitSampler : public UnitSampler {
 public:
  TwcsUnitSampler(const KgView& view, uint64_t m) : sampler_(view, m) {}

  std::vector<SampleUnit> NextBatch(uint64_t n, Rng& rng) override;

  uint64_t second_stage_size() const { return sampler_.second_stage_size(); }

 private:
  TwcsSampler sampler_;
};

/// Shared translation: ClusterDraws -> SampleUnits.
std::vector<SampleUnit> ToSampleUnits(std::vector<ClusterDraw> draws);

}  // namespace kgacc
