#include "sampling/unit_samplers.h"

#include <utility>

namespace kgacc {

std::vector<SampleUnit> ToSampleUnits(std::vector<ClusterDraw> draws) {
  std::vector<SampleUnit> units;
  units.reserve(draws.size());
  for (ClusterDraw& draw : draws) {
    units.push_back(SampleUnit{draw.cluster, std::move(draw.offsets)});
  }
  return units;
}

std::vector<SampleUnit> SrsUnitSampler::NextBatch(uint64_t n, Rng& rng) {
  const std::vector<TripleRef> triples = sampler_.NextBatch(n, rng);
  std::vector<SampleUnit> units;
  units.reserve(triples.size());
  for (const TripleRef& ref : triples) {
    units.push_back(SampleUnit{ref.cluster, {ref.offset}});
  }
  return units;
}

std::vector<SampleUnit> RcsUnitSampler::NextBatch(uint64_t n, Rng& rng) {
  return ToSampleUnits(sampler_.NextBatch(n, rng));
}

std::vector<SampleUnit> WcsUnitSampler::NextBatch(uint64_t n, Rng& rng) {
  return ToSampleUnits(sampler_.NextBatch(n, rng));
}

std::vector<SampleUnit> TwcsUnitSampler::NextBatch(uint64_t n, Rng& rng) {
  return ToSampleUnits(sampler_.NextBatch(n, rng));
}

}  // namespace kgacc
