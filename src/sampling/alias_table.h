#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace kgacc {

/// Walker–Vose alias method: O(n) preprocessing, O(1) weighted sampling with
/// replacement. Backs the first stage of WCS/TWCS, where clusters are drawn
/// with probability proportional to size pi_i = M_i / M (Section 5.2.2).
class AliasTable {
 public:
  /// `weights` must be non-empty with non-negative entries and positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Convenience overload for integer cluster sizes.
  static AliasTable FromSizes(const std::vector<uint32_t>& sizes);
  static AliasTable FromSizes(const std::vector<uint64_t>& sizes);

  /// Draws an index with probability proportional to its weight.
  uint64_t Sample(Rng& rng) const;

  /// Normalized probability of index i (for tests/diagnostics).
  double Probability(uint64_t i) const;

  uint64_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;      // acceptance probability per bucket.
  std::vector<uint64_t> alias_;   // alias index per bucket.
  std::vector<double> normalized_;
};

}  // namespace kgacc
