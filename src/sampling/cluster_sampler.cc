#include "sampling/cluster_sampler.h"

#include <numeric>

#include "sampling/srs.h"
#include "util/logging.h"

namespace kgacc {

namespace {

std::vector<uint64_t> AllOffsets(uint64_t size) {
  std::vector<uint64_t> offsets(size);
  std::iota(offsets.begin(), offsets.end(), 0);
  return offsets;
}

std::vector<double> SizesAsWeights(const KgView& view) {
  std::vector<double> weights(view.NumClusters());
  for (uint64_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<double>(view.ClusterSize(i));
  }
  return weights;
}

}  // namespace

RcsSampler::RcsSampler(const KgView& view) : view_(view) {}

std::vector<ClusterDraw> RcsSampler::NextBatch(uint64_t n, Rng& rng) {
  const uint64_t total = view_.NumClusters();
  std::vector<ClusterDraw> batch;
  const uint64_t remaining = total - drawn_.size();
  n = std::min(n, remaining);
  batch.reserve(n);
  uint64_t produced = 0;
  uint64_t attempts = 0;
  const uint64_t max_attempts = 20 * (n + 8);
  while (produced < n && attempts < max_attempts) {
    ++attempts;
    const uint64_t cluster = rng.UniformIndex(total);
    if (drawn_.insert(cluster).second) {
      batch.push_back(ClusterDraw{cluster, AllOffsets(view_.ClusterSize(cluster))});
      ++produced;
    }
  }
  for (uint64_t cluster = 0; cluster < total && produced < n; ++cluster) {
    if (drawn_.insert(cluster).second) {
      batch.push_back(ClusterDraw{cluster, AllOffsets(view_.ClusterSize(cluster))});
      ++produced;
    }
  }
  return batch;
}

WcsSampler::WcsSampler(const KgView& view)
    : view_(view), alias_(SizesAsWeights(view)) {}

std::vector<ClusterDraw> WcsSampler::NextBatch(uint64_t n, Rng& rng) {
  std::vector<ClusterDraw> batch;
  batch.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t cluster = alias_.Sample(rng);
    batch.push_back(ClusterDraw{cluster, AllOffsets(view_.ClusterSize(cluster))});
  }
  return batch;
}

TwcsSampler::TwcsSampler(const KgView& view, uint64_t m)
    : view_(view), alias_(SizesAsWeights(view)), m_(m) {
  KGACC_CHECK(m_ >= 1) << "TWCS second-stage size m must be >= 1";
}

std::vector<ClusterDraw> TwcsSampler::NextBatch(uint64_t n, Rng& rng) {
  std::vector<ClusterDraw> batch;
  batch.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t cluster = alias_.Sample(rng);
    const uint64_t size = view_.ClusterSize(cluster);
    batch.push_back(
        ClusterDraw{cluster, SampleIndicesWithoutReplacement(size, m_, rng)});
  }
  return batch;
}

}  // namespace kgacc
