#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kg/knowledge_graph.h"
#include "labels/truth_oracle.h"
#include "util/rng.h"
#include "util/status.h"

namespace kgacc {

/// Synthetic cluster-size generators used to reconstruct the paper's
/// datasets (Table 3) when the original triples are unavailable. All are
/// deterministic given the Rng state.

/// Sizes from a truncated Zipf distribution over {1..max_size} with exponent
/// `s` (mass of size k proportional to 1/k^s). Models long-tail KGs like
/// NELL where >98% of clusters have fewer than 5 triples.
std::vector<uint32_t> GenerateZipfSizes(uint64_t num_clusters, double s,
                                        uint32_t max_size, Rng& rng);

/// Sizes from a discretized log-normal: ceil(exp(N(mu_log, sigma_log)))
/// capped at max_size. Models MOVIE-like heavy-tail graphs with very large
/// clusters (popular actors/movies).
std::vector<uint32_t> GenerateLogNormalSizes(uint64_t num_clusters,
                                             double mu_log, double sigma_log,
                                             uint32_t max_size, Rng& rng);

/// Rescales `sizes` so they sum exactly to `target_total` while keeping every
/// cluster non-empty: proportionally scales, then distributes the remainder
/// over the largest clusters (deterministic).
void ScaleSizesToTotal(std::vector<uint32_t>* sizes, uint64_t target_total);

/// Parameters for materializing triples over generated cluster sizes.
struct GraphMaterializeOptions {
  uint32_t num_predicates = 16;
  /// Objects are drawn from a pool of this many entities with Zipfian
  /// popularity (popular objects shared across subjects create the coupling
  /// structure the KGEval baseline exploits).
  uint32_t object_pool = 1024;
  double object_zipf_s = 1.1;
  /// Fraction of triples whose object is a literal (data property).
  double literal_fraction = 0.3;
  uint32_t num_literals = 4096;
};

/// Materializes a KnowledgeGraph with the given cluster sizes. Subject ids
/// are 0..N-1; objects/predicates are synthetic ids per `options`.
KnowledgeGraph MaterializeGraph(const std::vector<uint32_t>& sizes,
                                const GraphMaterializeOptions& options, Rng& rng);

/// Streams the same synthetic graph MaterializeGraph would build directly
/// into a `kgacc-kgstore-v1` file at `path`, never materializing it: memory
/// stays O(write buffers) at any triple count. Draws from `rng` in exactly
/// MaterializeGraph's order, so the store is byte-identical to
/// WriteGraphStore(MaterializeGraph(...)) with the same seed. When `labels`
/// is given the gold-label bitset is embedded (one IsCorrect per triple).
Status MaterializeGraphToStore(const std::vector<uint32_t>& sizes,
                               const GraphMaterializeOptions& options,
                               Rng& rng, const std::string& path,
                               const TruthOracle* labels = nullptr);

}  // namespace kgacc
