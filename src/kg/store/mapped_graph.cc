#include "kg/store/mapped_graph.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace kgacc {
namespace {

using store::Header;
using store::Section;
using store::SectionDesc;

/// Byte size each section must have given the header counts; sections not
/// present under `flags` must be zero-sized. kSymbolBlob has no fixed size
/// (returns the descriptor's own size so the bounds check still applies).
uint64_t ExpectedSectionBytes(const Header& h, Section s) {
  const uint64_t kind_words = store::BitsetWords(h.num_triples);
  switch (s) {
    case store::kClusterOffsets:
      return (h.num_clusters + 1) * sizeof(uint64_t);
    case store::kClusterSubjects:
      return h.num_clusters * sizeof(uint32_t);
    case store::kSubjects:
    case store::kPredicates:
    case store::kObjects:
      return h.num_triples * sizeof(uint32_t);
    case store::kObjectKinds:
      return kind_words * sizeof(uint64_t);
    case store::kLabels:
      return (h.flags & store::kHasLabels) ? kind_words * sizeof(uint64_t) : 0;
    case store::kSymbolOffsets:
      return (h.flags & store::kHasSymbols)
                 ? (h.num_symbols + 1) * sizeof(uint64_t)
                 : 0;
    case store::kSymbolBlob:
      return (h.flags & store::kHasSymbols) ? h.sections[s].size_bytes : 0;
    default:
      return 0;
  }
}

/// O(1) structural validation of the header against the mapped size:
/// magic, version, checksum, and that every section lies inside the file
/// (overflow-safe) at 8-byte alignment with the size its counts demand.
Status ValidateHeader(const Header& h, uint64_t file_bytes,
                      const std::string& path) {
  if (!store::MagicMatches(h)) {
    return Status::InvalidArgument("not a kgacc-kgstore file: " + path);
  }
  if (h.version != store::kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported kgstore version " + std::to_string(h.version) + ": " +
        path);
  }
  if (store::HeaderChecksum(h) != h.header_checksum) {
    return Status::InvalidArgument("kgstore header checksum mismatch: " +
                                   path);
  }
  for (uint32_t s = 0; s < store::kNumSections; ++s) {
    const SectionDesc& d = h.sections[s];
    const uint64_t expected =
        ExpectedSectionBytes(h, static_cast<Section>(s));
    if (d.size_bytes != expected) {
      return Status::InvalidArgument(
          "kgstore section " + std::to_string(s) + " has " +
          std::to_string(d.size_bytes) + " bytes, expected " +
          std::to_string(expected) + ": " + path);
    }
    if (d.size_bytes == 0) continue;
    if (d.size_bytes > file_bytes || d.offset > file_bytes - d.size_bytes) {
      return Status::OutOfRange(
          "kgstore section " + std::to_string(s) +
          " extends past end of file: " + path);
    }
    if (d.offset % sizeof(uint64_t) != 0) {
      return Status::InvalidArgument(
          "kgstore section " + std::to_string(s) + " is misaligned: " + path);
    }
  }
  return Status::OK();
}

}  // namespace

const void* MappedGraph::SectionPtr(store::Section section) const {
  return static_cast<const char*>(mapped_) + header_.sections[section].offset;
}

void MappedGraph::BindSections() {
  cluster_offsets_ =
      static_cast<const uint64_t*>(SectionPtr(store::kClusterOffsets));
  cluster_subjects_ =
      static_cast<const uint32_t*>(SectionPtr(store::kClusterSubjects));
  subjects_ = static_cast<const uint32_t*>(SectionPtr(store::kSubjects));
  predicates_ = static_cast<const uint32_t*>(SectionPtr(store::kPredicates));
  objects_ = static_cast<const uint32_t*>(SectionPtr(store::kObjects));
  object_kinds_ =
      static_cast<const uint64_t*>(SectionPtr(store::kObjectKinds));
  labels_ = has_labels()
                ? static_cast<const uint64_t*>(SectionPtr(store::kLabels))
                : nullptr;
  if (has_symbols()) {
    symbol_offsets_ =
        static_cast<const uint64_t*>(SectionPtr(store::kSymbolOffsets));
    symbol_blob_ = static_cast<const char*>(SectionPtr(store::kSymbolBlob));
  } else {
    symbol_offsets_ = nullptr;
    symbol_blob_ = nullptr;
  }
}

Result<MappedGraph> MappedGraph::Open(const std::string& path,
                                      const OpenOptions& options) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::ScopedSpan span("kg.store.open",
                       registry.GetHistogram("kg.store.open_seconds"));

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open kgstore file " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat kgstore file " + path + ": " +
                           std::strerror(err));
  }
  const uint64_t file_bytes = static_cast<uint64_t>(st.st_size);
  if (file_bytes < sizeof(Header)) {
    ::close(fd);
    return Status::InvalidArgument(
        "kgstore file truncated before header end (" +
        std::to_string(file_bytes) + " bytes): " + path);
  }
  void* mapped = ::mmap(nullptr, file_bytes, PROT_READ, MAP_SHARED, fd, 0);
  if (mapped == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot mmap kgstore file " + path + ": " +
                           std::strerror(err));
  }

  MappedGraph graph;
  graph.path_ = path;
  graph.fd_ = fd;
  graph.mapped_ = mapped;
  graph.mapped_bytes_ = file_bytes;
  std::memcpy(&graph.header_, mapped, sizeof(Header));

  Status status = ValidateHeader(graph.header_, file_bytes, path);
  if (!status.ok()) return status;  // graph's destructor unmaps.
  graph.BindSections();

  // Two O(1) endpoint reads pin the prefix-sum index to the header counts;
  // everything in between is Verify()'s job.
  if (graph.cluster_offsets_[0] != 0 ||
      graph.cluster_offsets_[graph.header_.num_clusters] !=
          graph.header_.num_triples) {
    return Status::InvalidArgument(
        "kgstore cluster index endpoints disagree with header counts: " +
        path);
  }

  if (options.verify_checksums) {
    KGACC_RETURN_IF_ERROR(graph.Verify());
  }

  registry.GetCounter("kg.store.opens")->Add(1);
  registry.GetCounter("kg.store.bytes_mapped")->Add(file_bytes);
  return graph;
}

Status MappedGraph::Verify() const {
  for (uint32_t s = 0; s < store::kNumSections; ++s) {
    const SectionDesc& d = header_.sections[s];
    if (d.size_bytes == 0) continue;
    const uint64_t actual = store::Fnv1a(
        static_cast<const char*>(mapped_) + d.offset, d.size_bytes);
    if (actual != d.checksum) {
      return Status::InvalidArgument("kgstore section " + std::to_string(s) +
                                     " checksum mismatch: " + path_);
    }
  }
  for (uint64_t c = 0; c < header_.num_clusters; ++c) {
    if (cluster_offsets_[c] > cluster_offsets_[c + 1]) {
      return Status::InvalidArgument(
          "kgstore cluster offsets not monotone at cluster " +
          std::to_string(c) + ": " + path_);
    }
  }
  // Bits past num_triples in the bitset tail words must be zero so that
  // whole-section checksums stay canonical.
  const uint64_t tail_bits = header_.num_triples % 64;
  if (tail_bits != 0) {
    const uint64_t last = store::BitsetWords(header_.num_triples) - 1;
    const uint64_t mask = ~((uint64_t{1} << tail_bits) - 1);
    if ((object_kinds_[last] & mask) != 0 ||
        (labels_ != nullptr && (labels_[last] & mask) != 0)) {
      return Status::InvalidArgument(
          "kgstore bitset tail padding is not zero: " + path_);
    }
  }
  if (has_symbols()) {
    for (uint64_t i = 0; i < header_.num_symbols; ++i) {
      if (symbol_offsets_[i] > symbol_offsets_[i + 1]) {
        return Status::InvalidArgument(
            "kgstore symbol offsets not monotone: " + path_);
      }
    }
    if (symbol_offsets_[0] != 0 ||
        symbol_offsets_[header_.num_symbols] !=
            header_.sections[store::kSymbolBlob].size_bytes) {
      return Status::InvalidArgument(
          "kgstore symbol offsets disagree with blob size: " + path_);
    }
  }
  return Status::OK();
}

void MappedGraph::MoveFrom(MappedGraph& other) noexcept {
  path_ = std::move(other.path_);
  fd_ = std::exchange(other.fd_, -1);
  mapped_ = std::exchange(other.mapped_, nullptr);
  mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
  header_ = other.header_;
  cluster_offsets_ = other.cluster_offsets_;
  cluster_subjects_ = other.cluster_subjects_;
  subjects_ = other.subjects_;
  predicates_ = other.predicates_;
  objects_ = other.objects_;
  object_kinds_ = other.object_kinds_;
  labels_ = other.labels_;
  symbol_offsets_ = other.symbol_offsets_;
  symbol_blob_ = other.symbol_blob_;
}

MappedGraph::MappedGraph(MappedGraph&& other) noexcept { MoveFrom(other); }

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this != &other) {
    Unmap();
    MoveFrom(other);
  }
  return *this;
}

void MappedGraph::Unmap() {
  if (mapped_ != nullptr) {
    ::munmap(const_cast<void*>(mapped_), mapped_bytes_);
    mapped_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

MappedGraph::~MappedGraph() { Unmap(); }

}  // namespace kgacc
