#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "kg/store/format.h"
#include "kg/triple.h"
#include "kg/triple_view.h"
#include "labels/truth_oracle.h"
#include "util/result.h"
#include "util/status.h"

namespace kgacc {

/// Zero-copy TripleView over a memory-mapped `kgacc-kgstore-v1` file.
///
/// Open() is O(1) in the triple count: it mmaps the file and validates only
/// the header (magic, version, header checksum, section bounds) plus the two
/// end-point cluster offsets, so opening a 100M-triple store costs the same
/// as a 10K-triple one — pages fault in lazily as samplers touch them. Full
/// payload validation (per-section checksums, offset monotonicity, id
/// bounds) is the explicit O(bytes) Verify() pass, also reachable as
/// `OpenOptions{.verify_checksums = true}`.
///
/// Every lookup reads the columns in place; nothing is decoded or copied at
/// open time, which is what makes daemon restart over large graphs
/// near-instant.
class MappedGraph final : public TripleView {
 public:
  struct OpenOptions {
    /// Run the full Verify() pass before returning. Turns open into
    /// O(bytes); use for untrusted files, not the serving hot path.
    bool verify_checksums = false;
  };

  static Result<MappedGraph> Open(const std::string& path,
                                  const OpenOptions& options);
  static Result<MappedGraph> Open(const std::string& path) {
    return Open(path, OpenOptions{});
  }

  MappedGraph(MappedGraph&& other) noexcept;
  MappedGraph& operator=(MappedGraph&& other) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;
  ~MappedGraph() override;

  // KgView.
  uint64_t NumClusters() const override { return header_.num_clusters; }
  uint64_t ClusterSize(uint64_t cluster) const override {
    return cluster_offsets_[cluster + 1] - cluster_offsets_[cluster];
  }
  uint64_t TotalTriples() const override { return header_.num_triples; }

  // TripleView. TripleAt assembles the 12-byte Triple from the s/p/o
  // columns and the object-kind bitset at global index off[c] + offset.
  Triple TripleAt(const TripleRef& ref) const override {
    const uint64_t i = cluster_offsets_[ref.cluster] + ref.offset;
    Triple t;
    t.subject = subjects_[i];
    t.predicate = predicates_[i];
    t.object.id = objects_[i];
    t.object.kind = TestBit(object_kinds_, i) ? ObjectKind::kLiteral
                                              : ObjectKind::kEntity;
    return t;
  }
  EntityId ClusterSubject(uint64_t cluster) const override {
    return cluster_subjects_[cluster];
  }

  /// Whether the file carries a gold-label bitset (flags & kHasLabels).
  bool has_labels() const { return (header_.flags & store::kHasLabels) != 0; }

  /// Ground-truth correctness of the triple at `ref`. Requires has_labels().
  bool LabelAt(const TripleRef& ref) const {
    return TestBit(labels_, cluster_offsets_[ref.cluster] + ref.offset);
  }

  /// Whether the file carries a symbol string table (flags & kHasSymbols).
  bool has_symbols() const {
    return (header_.flags & store::kHasSymbols) != 0;
  }
  uint64_t NumSymbols() const { return header_.num_symbols; }

  /// Name of interned symbol `id` (< NumSymbols()). Requires has_symbols().
  std::string_view SymbolName(uint32_t id) const {
    const uint64_t begin = symbol_offsets_[id];
    return {symbol_blob_ + begin, symbol_offsets_[id + 1] - begin};
  }

  /// Full O(bytes) validation: per-section FNV checksums, cluster-offset
  /// monotonicity, and object-kind/label bitset tail padding.
  Status Verify() const;

  const std::string& path() const { return path_; }
  uint64_t FileBytes() const { return mapped_bytes_; }
  const store::Header& header() const { return header_; }

 private:
  MappedGraph() = default;

  static bool TestBit(const uint64_t* words, uint64_t i) {
    return (words[i / 64] >> (i % 64)) & 1;
  }
  const void* SectionPtr(store::Section section) const;
  void BindSections();
  void MoveFrom(MappedGraph& other) noexcept;
  void Unmap();

  std::string path_;
  int fd_ = -1;
  const void* mapped_ = nullptr;  // nullptr when moved-from / default.
  uint64_t mapped_bytes_ = 0;

  store::Header header_;
  const uint64_t* cluster_offsets_ = nullptr;
  const uint32_t* cluster_subjects_ = nullptr;
  const uint32_t* subjects_ = nullptr;
  const uint32_t* predicates_ = nullptr;
  const uint32_t* objects_ = nullptr;
  const uint64_t* object_kinds_ = nullptr;
  const uint64_t* labels_ = nullptr;         // only when has_labels().
  const uint64_t* symbol_offsets_ = nullptr; // only when has_symbols().
  const char* symbol_blob_ = nullptr;        // only when has_symbols().
};

/// TruthOracle serving the store's embedded gold-label bitset. Holds a
/// non-owning pointer: the MappedGraph must outlive the oracle (Dataset
/// declares the graph before the oracle, so destruction order is safe).
class MappedLabelOracle final : public TruthOracle {
 public:
  explicit MappedLabelOracle(const MappedGraph* graph) : graph_(graph) {}

  bool IsCorrect(const TripleRef& ref) const override {
    return graph_->LabelAt(ref);
  }

 private:
  const MappedGraph* graph_;
};

}  // namespace kgacc
