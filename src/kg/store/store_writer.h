#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kg/store/format.h"
#include "kg/symbol_table.h"
#include "kg/triple.h"
#include "kg/triple_view.h"
#include "labels/truth_oracle.h"
#include "util/result.h"
#include "util/status.h"

namespace kgacc {

/// Streaming writer for `kgacc-kgstore-v1` files.
///
/// The caller declares the cluster and triple counts up front (they size the
/// fixed columnar sections), then streams clusters in order:
///
///   KGACC_ASSIGN_OR_RETURN(StoreWriter w,
///                          StoreWriter::Create(path, N, M, {...}));
///   for each cluster: w.BeginCluster(subject);
///                     for each triple: w.AddTriple(predicate, object, label);
///   KGACC_RETURN_IF_ERROR(w.Finish(&symbols));
///
/// Every column is buffered per section and flushed with pwrite at its own
/// file cursor, with FNV checksums accumulated incrementally — memory stays
/// O(buffer) regardless of graph size, which is what lets MaterializeGraph's
/// streaming path generate 100M-triple graphs without ever holding them.
class StoreWriter {
 public:
  struct Options {
    /// Reserve and populate the gold-label bitset section (the `correct`
    /// argument of AddTriple is ignored otherwise).
    bool with_labels = false;
  };

  static Result<StoreWriter> Create(const std::string& path,
                                    uint64_t num_clusters,
                                    uint64_t num_triples,
                                    const Options& options);
  static Result<StoreWriter> Create(const std::string& path,
                                    uint64_t num_clusters,
                                    uint64_t num_triples) {
    return Create(path, num_clusters, num_triples, Options{});
  }

  StoreWriter(StoreWriter&& other) noexcept;
  StoreWriter& operator=(StoreWriter&& other) noexcept;
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;
  ~StoreWriter();

  /// Starts the next cluster. Subjects are stored both in the per-cluster
  /// index and replicated into the per-triple subject column by AddTriple,
  /// so the invariant "every triple's subject is its cluster's subject"
  /// holds by construction.
  Status BeginCluster(EntityId subject);

  /// Appends one triple to the current cluster.
  Status AddTriple(PredicateId predicate, ObjectRef object,
                   bool correct = false);

  /// Flushes all sections, appends the symbol table (when given), writes the
  /// checksummed header, and closes the file. Fails unless exactly the
  /// declared number of clusters and triples were streamed.
  Status Finish(const SymbolTable* symbols = nullptr);

 private:
  // One append-only column: buffered writes at `begin + cursor` with an
  // incrementally maintained FNV-1a digest.
  struct SectionStream {
    uint64_t begin = 0;
    uint64_t cursor = 0;
    uint64_t checksum = store::kFnvOffsetBasis;
    std::vector<char> buffer;
  };

  StoreWriter() = default;
  void MoveFrom(StoreWriter& other) noexcept;
  void Close();

  Status Append(store::Section section, const void* data, uint64_t size);
  Status FlushSection(store::Section section);
  Status AppendBit(store::Section section, uint64_t& word, bool bit);
  Status FlushBitWord(store::Section section, uint64_t& word);

  std::string path_;
  int fd_ = -1;
  bool with_labels_ = false;
  bool finished_ = false;
  uint64_t num_clusters_ = 0;
  uint64_t num_triples_ = 0;
  uint64_t clusters_begun_ = 0;
  uint64_t triples_added_ = 0;
  EntityId current_subject_ = kInvalidId;
  uint64_t kind_word_ = 0;   // partial object-kind bitset word.
  uint64_t label_word_ = 0;  // partial label bitset word.
  SectionStream streams_[store::kNumSections];
};

/// Converts any materialized TripleView into a store file in one pass.
/// `symbols` adds the string-table sections; `labels` adds the gold-label
/// bitset (consulted once per triple).
Status WriteGraphStore(const std::string& path, const TripleView& view,
                       const SymbolTable* symbols = nullptr,
                       const TruthOracle* labels = nullptr);

}  // namespace kgacc
