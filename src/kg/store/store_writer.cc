#include "kg/store/store_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace kgacc {
namespace {

// Per-section write buffer: large enough to amortize pwrite syscalls, small
// enough that nine of them stay negligible next to the page cache.
constexpr uint64_t kFlushBytes = 1 << 20;

Status PwriteAll(int fd, const char* data, uint64_t size, uint64_t offset,
                 const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, data, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("kgstore write failed for " + path + ": " +
                             std::strerror(errno));
    }
    data += n;
    size -= static_cast<uint64_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<StoreWriter> StoreWriter::Create(const std::string& path,
                                        uint64_t num_clusters,
                                        uint64_t num_triples,
                                        const Options& options) {
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create kgstore file " + path + ": " +
                           std::strerror(errno));
  }

  StoreWriter writer;
  writer.path_ = path;
  writer.fd_ = fd;
  writer.with_labels_ = options.with_labels;
  writer.num_clusters_ = num_clusters;
  writer.num_triples_ = num_triples;

  // The fixed sections are sized entirely by the declared counts, so their
  // offsets are laid out now; the symbol sections (sizes unknown until the
  // table is handed to Finish) are appended at the end.
  const uint64_t kind_words = store::BitsetWords(num_triples);
  const uint64_t fixed_sizes[store::kNumSections] = {
      (num_clusters + 1) * sizeof(uint64_t),              // kClusterOffsets
      num_clusters * sizeof(uint32_t),                    // kClusterSubjects
      num_triples * sizeof(uint32_t),                     // kSubjects
      num_triples * sizeof(uint32_t),                     // kPredicates
      num_triples * sizeof(uint32_t),                     // kObjects
      kind_words * sizeof(uint64_t),                      // kObjectKinds
      options.with_labels ? kind_words * sizeof(uint64_t) : 0,  // kLabels
      0,                                                  // kSymbolOffsets
      0,                                                  // kSymbolBlob
  };
  uint64_t offset = store::AlignUp(sizeof(store::Header), store::kSectionAlign);
  for (uint32_t s = 0; s < store::kNumSections; ++s) {
    if (fixed_sizes[s] == 0) continue;
    writer.streams_[s].begin = offset;
    offset = store::AlignUp(offset + fixed_sizes[s], store::kSectionAlign);
  }
  return writer;
}

Status StoreWriter::Append(store::Section section, const void* data,
                           uint64_t size) {
  SectionStream& stream = streams_[section];
  stream.checksum = store::Fnv1a(data, size, stream.checksum);
  const char* bytes = static_cast<const char*>(data);
  stream.buffer.insert(stream.buffer.end(), bytes, bytes + size);
  stream.cursor += size;
  if (stream.buffer.size() >= kFlushBytes) {
    return FlushSection(section);
  }
  return Status::OK();
}

Status StoreWriter::FlushSection(store::Section section) {
  SectionStream& stream = streams_[section];
  if (stream.buffer.empty()) return Status::OK();
  const uint64_t flushed_end = stream.cursor - stream.buffer.size();
  KGACC_RETURN_IF_ERROR(PwriteAll(fd_, stream.buffer.data(),
                                  stream.buffer.size(),
                                  stream.begin + flushed_end, path_));
  stream.buffer.clear();
  return Status::OK();
}

Status StoreWriter::AppendBit(store::Section section, uint64_t& word,
                              bool bit) {
  const uint64_t pos = triples_added_ % 64;
  if (bit) word |= uint64_t{1} << pos;
  if (pos == 63) return FlushBitWord(section, word);
  return Status::OK();
}

Status StoreWriter::FlushBitWord(store::Section section, uint64_t& word) {
  const uint64_t value = word;
  word = 0;
  return Append(section, &value, sizeof(value));
}

Status StoreWriter::BeginCluster(EntityId subject) {
  if (finished_) {
    return Status::FailedPrecondition("StoreWriter already finished");
  }
  if (clusters_begun_ == num_clusters_) {
    return Status::OutOfRange("BeginCluster beyond declared " +
                              std::to_string(num_clusters_) + " clusters");
  }
  KGACC_RETURN_IF_ERROR(
      Append(store::kClusterOffsets, &triples_added_, sizeof(uint64_t)));
  KGACC_RETURN_IF_ERROR(
      Append(store::kClusterSubjects, &subject, sizeof(uint32_t)));
  current_subject_ = subject;
  ++clusters_begun_;
  return Status::OK();
}

Status StoreWriter::AddTriple(PredicateId predicate, ObjectRef object,
                              bool correct) {
  if (clusters_begun_ == 0) {
    return Status::FailedPrecondition("AddTriple before BeginCluster");
  }
  if (triples_added_ == num_triples_) {
    return Status::OutOfRange("AddTriple beyond declared " +
                              std::to_string(num_triples_) + " triples");
  }
  KGACC_RETURN_IF_ERROR(
      Append(store::kSubjects, &current_subject_, sizeof(uint32_t)));
  KGACC_RETURN_IF_ERROR(
      Append(store::kPredicates, &predicate, sizeof(uint32_t)));
  KGACC_RETURN_IF_ERROR(Append(store::kObjects, &object.id, sizeof(uint32_t)));
  KGACC_RETURN_IF_ERROR(AppendBit(store::kObjectKinds, kind_word_,
                                  object.kind == ObjectKind::kLiteral));
  if (with_labels_) {
    KGACC_RETURN_IF_ERROR(AppendBit(store::kLabels, label_word_, correct));
  }
  ++triples_added_;
  return Status::OK();
}

Status StoreWriter::Finish(const SymbolTable* symbols) {
  if (finished_) {
    return Status::FailedPrecondition("StoreWriter already finished");
  }
  if (clusters_begun_ != num_clusters_) {
    return Status::FailedPrecondition(
        "Finish after " + std::to_string(clusters_begun_) + " of " +
        std::to_string(num_clusters_) + " declared clusters");
  }
  if (triples_added_ != num_triples_) {
    return Status::FailedPrecondition(
        "Finish after " + std::to_string(triples_added_) + " of " +
        std::to_string(num_triples_) + " declared triples");
  }
  KGACC_RETURN_IF_ERROR(
      Append(store::kClusterOffsets, &num_triples_, sizeof(uint64_t)));
  if (num_triples_ % 64 != 0) {
    KGACC_RETURN_IF_ERROR(FlushBitWord(store::kObjectKinds, kind_word_));
    if (with_labels_) {
      KGACC_RETURN_IF_ERROR(FlushBitWord(store::kLabels, label_word_));
    }
  }

  if (symbols != nullptr && !symbols->empty()) {
    // Symbol sections trail the fixed layout: offsets first, blob after.
    uint64_t end = store::AlignUp(sizeof(store::Header), store::kSectionAlign);
    for (uint32_t s = 0; s < store::kNumSections; ++s) {
      if (streams_[s].cursor > 0) {
        end = std::max(end, streams_[s].begin + streams_[s].cursor);
      }
    }
    streams_[store::kSymbolOffsets].begin =
        store::AlignUp(end, store::kSectionAlign);
    uint64_t blob_bytes = 0;
    for (uint32_t id = 0; id < symbols->size(); ++id) {
      KGACC_RETURN_IF_ERROR(
          Append(store::kSymbolOffsets, &blob_bytes, sizeof(uint64_t)));
      blob_bytes += symbols->Name(id).size();
    }
    KGACC_RETURN_IF_ERROR(
        Append(store::kSymbolOffsets, &blob_bytes, sizeof(uint64_t)));
    streams_[store::kSymbolBlob].begin =
        store::AlignUp(streams_[store::kSymbolOffsets].begin +
                           streams_[store::kSymbolOffsets].cursor,
                       store::kSectionAlign);
    for (uint32_t id = 0; id < symbols->size(); ++id) {
      const std::string& name = symbols->Name(id);
      KGACC_RETURN_IF_ERROR(
          Append(store::kSymbolBlob, name.data(), name.size()));
    }
  }

  for (uint32_t s = 0; s < store::kNumSections; ++s) {
    KGACC_RETURN_IF_ERROR(FlushSection(static_cast<store::Section>(s)));
  }

  store::Header header;
  std::memcpy(header.magic, store::kMagic, sizeof(store::kMagic));
  header.version = store::kFormatVersion;
  header.flags = (with_labels_ ? store::kHasLabels : 0) |
                 (symbols != nullptr && !symbols->empty() ? store::kHasSymbols
                                                          : 0);
  header.num_clusters = num_clusters_;
  header.num_triples = num_triples_;
  header.num_symbols =
      symbols != nullptr && !symbols->empty() ? symbols->size() : 0;
  for (uint32_t s = 0; s < store::kNumSections; ++s) {
    if (streams_[s].cursor == 0) continue;
    header.sections[s].offset = streams_[s].begin;
    header.sections[s].size_bytes = streams_[s].cursor;
    header.sections[s].checksum = streams_[s].checksum;
  }
  header.header_checksum = store::HeaderChecksum(header);
  KGACC_RETURN_IF_ERROR(PwriteAll(
      fd_, reinterpret_cast<const char*>(&header), sizeof(header), 0, path_));

  obs::MetricsRegistry::Global()
      .GetCounter("kg.store.triples_written")
      ->Add(triples_added_);
  finished_ = true;
  Close();
  return Status::OK();
}

void StoreWriter::MoveFrom(StoreWriter& other) noexcept {
  path_ = std::move(other.path_);
  fd_ = std::exchange(other.fd_, -1);
  with_labels_ = other.with_labels_;
  finished_ = other.finished_;
  num_clusters_ = other.num_clusters_;
  num_triples_ = other.num_triples_;
  clusters_begun_ = other.clusters_begun_;
  triples_added_ = other.triples_added_;
  current_subject_ = other.current_subject_;
  kind_word_ = other.kind_word_;
  label_word_ = other.label_word_;
  for (uint32_t s = 0; s < store::kNumSections; ++s) {
    streams_[s] = std::move(other.streams_[s]);
  }
}

void StoreWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StoreWriter::StoreWriter(StoreWriter&& other) noexcept { MoveFrom(other); }

StoreWriter& StoreWriter::operator=(StoreWriter&& other) noexcept {
  if (this != &other) {
    Close();
    MoveFrom(other);
  }
  return *this;
}

StoreWriter::~StoreWriter() { Close(); }

Status WriteGraphStore(const std::string& path, const TripleView& view,
                       const SymbolTable* symbols, const TruthOracle* labels) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::ScopedSpan span("kg.store.write",
                       registry.GetHistogram("kg.store.write_seconds"));
  StoreWriter::Options options;
  options.with_labels = labels != nullptr;
  KGACC_ASSIGN_OR_RETURN(
      StoreWriter writer,
      StoreWriter::Create(path, view.NumClusters(), view.TotalTriples(),
                          options));
  for (uint64_t c = 0; c < view.NumClusters(); ++c) {
    KGACC_RETURN_IF_ERROR(writer.BeginCluster(view.ClusterSubject(c)));
    const uint64_t size = view.ClusterSize(c);
    for (uint64_t offset = 0; offset < size; ++offset) {
      const TripleRef ref{c, offset};
      const Triple t = view.TripleAt(ref);
      KGACC_RETURN_IF_ERROR(writer.AddTriple(
          t.predicate, t.object, labels != nullptr && labels->IsCorrect(ref)));
    }
  }
  return writer.Finish(symbols);
}

}  // namespace kgacc
