#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace kgacc::store {

/// On-disk layout of the `kgacc-kgstore-v1` binary columnar graph store.
///
/// The file is a fixed header followed by columnar sections laid out
/// structure-of-arrays, each 64-byte aligned so a memory-mapped open can
/// serve every lookup zero-copy:
///
///   [Header]
///   cluster_offsets   uint64[num_clusters + 1]   triple prefix sums; cluster
///                                                i spans [off[i], off[i+1])
///   cluster_subjects  uint32[num_clusters]       subject id per cluster
///   subjects          uint32[num_triples]        per-triple subject column
///   predicates        uint32[num_triples]        per-triple predicate column
///   objects           uint32[num_triples]        per-triple object id column
///   object_kinds      uint64[ceil(M/64)]         bit i: object i is a literal
///   labels            uint64[ceil(M/64)]         bit i: triple i is correct
///                                                (present iff kHasLabels)
///   symbol_offsets    uint64[num_symbols + 1]    byte offsets into the blob
///                                                (present iff kHasSymbols)
///   symbol_blob       bytes                      concatenated symbol names
///
/// Integers are host-endian (the store is a mmap substrate, not an exchange
/// format; practically that means little-endian everywhere we build).
/// Every section carries an FNV-1a 64 checksum in its descriptor; the header
/// carries its own checksum so `MappedGraph::Open` validates the metadata in
/// O(1) without touching the payload, and `Verify()` (or Open with
/// `verify_checksums`) does the full O(bytes) pass.

/// File magic: exactly these 16 bytes, no terminator.
inline constexpr char kMagic[16] = {'k', 'g', 'a', 'c', 'c', '-', 'k', 'g',
                                    's', 't', 'o', 'r', 'e', '-', 'v', '1'};

inline constexpr uint32_t kFormatVersion = 1;

/// Section start alignment (cache-line) inside the file.
inline constexpr uint64_t kSectionAlign = 64;

/// Header::flags bits.
inline constexpr uint32_t kHasLabels = 1u << 0;
inline constexpr uint32_t kHasSymbols = 1u << 1;

enum Section : uint32_t {
  kClusterOffsets = 0,
  kClusterSubjects,
  kSubjects,
  kPredicates,
  kObjects,
  kObjectKinds,
  kLabels,
  kSymbolOffsets,
  kSymbolBlob,
  kNumSections,
};

struct SectionDesc {
  uint64_t offset = 0;      ///< absolute byte offset of the section.
  uint64_t size_bytes = 0;  ///< section length (0 when absent).
  uint64_t checksum = 0;    ///< FNV-1a 64 over the section bytes.
};

struct Header {
  char magic[16] = {};
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t num_clusters = 0;
  uint64_t num_triples = 0;
  uint64_t num_symbols = 0;
  SectionDesc sections[kNumSections] = {};
  /// FNV-1a 64 over the header bytes with this field zeroed.
  uint64_t header_checksum = 0;
};
static_assert(sizeof(Header) == 16 + 4 + 4 + 3 * 8 + 9 * 24 + 8,
              "Header must be packed (no padding): the checksum hashes raw "
              "struct bytes");

/// FNV-1a 64-bit, incremental: pass the previous digest as `state`.
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline uint64_t Fnv1a(const void* data, size_t size,
                      uint64_t state = kFnvOffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
  return state;
}

/// The checksum stored in / expected of `header`.
inline uint64_t HeaderChecksum(Header header) {
  header.header_checksum = 0;
  return Fnv1a(&header, sizeof(Header));
}

inline bool MagicMatches(const Header& header) {
  return std::memcmp(header.magic, kMagic, sizeof(kMagic)) == 0;
}

/// Number of uint64 words in a 1-bit-per-triple section.
inline uint64_t BitsetWords(uint64_t num_triples) {
  return (num_triples + 63) / 64;
}

inline uint64_t AlignUp(uint64_t value, uint64_t align) {
  return (value + align - 1) / align * align;
}

}  // namespace kgacc::store
