#pragma once

#include <cstdint>
#include <vector>

namespace kgacc {

/// Minimal structural view of a clustered knowledge graph that all sampling
/// designs consume: how many entity clusters there are and how many triples
/// each one holds. Two implementations exist:
///   - KnowledgeGraph: fully materialized triples (NELL/YAGO/loaded data);
///   - ClusterPopulation: sizes only, for very large synthetic graphs
///     (MOVIE-FULL at 130M triples) where triples are labeled lazily.
class KgView {
 public:
  virtual ~KgView() = default;

  /// Number of entity clusters N.
  virtual uint64_t NumClusters() const = 0;

  /// Number of triples M_i in cluster `cluster` (< NumClusters()).
  virtual uint64_t ClusterSize(uint64_t cluster) const = 0;

  /// Total number of triples M.
  virtual uint64_t TotalTriples() const = 0;

  /// Convenience: all cluster sizes as a dense vector (O(N)).
  std::vector<uint64_t> ClusterSizes() const {
    std::vector<uint64_t> sizes(NumClusters());
    for (uint64_t i = 0; i < sizes.size(); ++i) sizes[i] = ClusterSize(i);
    return sizes;
  }

  /// Average cluster size M/N (Table 3's "Average cluster size").
  double AverageClusterSize() const {
    return NumClusters() > 0 ? static_cast<double>(TotalTriples()) /
                                   static_cast<double>(NumClusters())
                             : 0.0;
  }
};

}  // namespace kgacc
