#pragma once

#include <cstdint>
#include <vector>

#include "kg/kg_view.h"

namespace kgacc {

/// Size-only representation of a clustered KG: stores each cluster's triple
/// count but no triple payloads. This is sufficient for every sampling design
/// in the paper (they only consume cluster sizes plus per-triple labels, which
/// a TruthOracle provides lazily) and scales to MOVIE-FULL's 130M triples in
/// ~60MB. Append-only, so it also serves as the evolving-KG substrate: each
/// applied ClusterDelta appends one new cluster (Section 6.1's weight trick).
class ClusterPopulation : public KgView {
 public:
  ClusterPopulation() = default;

  explicit ClusterPopulation(std::vector<uint32_t> sizes);

  /// Appends one cluster of `size` triples; returns its index.
  uint64_t Append(uint32_t size);

  /// Appends many clusters at once.
  void AppendAll(const std::vector<uint32_t>& sizes);

  // KgView:
  uint64_t NumClusters() const override { return sizes_.size(); }
  uint64_t ClusterSize(uint64_t cluster) const override;
  uint64_t TotalTriples() const override { return total_triples_; }

  const std::vector<uint32_t>& sizes() const { return sizes_; }

 private:
  std::vector<uint32_t> sizes_;
  uint64_t total_triples_ = 0;
};

}  // namespace kgacc
