#include "kg/symbol_table.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace kgacc {

uint32_t SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Result<uint32_t> SymbolTable::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound(StrFormat("symbol '%.*s' not interned",
                                      static_cast<int>(name.size()), name.data()));
  }
  return it->second;
}

const std::string& SymbolTable::Name(uint32_t id) const {
  KGACC_CHECK(id < names_.size()) << "symbol id " << id << " out of range";
  return names_[id];
}

bool SymbolTable::Contains(std::string_view name) const {
  return ids_.count(std::string(name)) > 0;
}

}  // namespace kgacc
