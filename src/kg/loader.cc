#include "kg/loader.h"

#include <fstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace kgacc {

namespace {

bool LooksLikeLiteral(std::string_view text) {
  if (text.empty()) return false;
  const char c = text.front();
  return (c >= '0' && c <= '9') || c == '"' || c == '+' || c == '-';
}

}  // namespace

Status LoadTsv(std::istream& in, SymbolTable* symbols, KnowledgeGraph* kg,
               std::vector<LabeledTriple>* labels) {
  static obs::Histogram* const load_seconds =
      obs::MetricsRegistry::Global().GetHistogram("kg.loader.load_tsv_seconds");
  static obs::Counter* const triples_loaded =
      obs::MetricsRegistry::Global().GetCounter("kg.loader.triples_loaded");
  obs::ScopedSpan span("kg.loader.load_tsv", load_seconds);
  const uint64_t triples_before = kg->TotalTriples();
  std::string line;
  uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;

    const std::vector<std::string_view> fields = SplitString(stripped, '\t');
    if (fields.size() != 3 && fields.size() != 4) {
      return Status::InvalidArgument(
          StrFormat("line %llu: expected 3 or 4 tab-separated fields, got %zu",
                    static_cast<unsigned long long>(line_number), fields.size()));
    }
    const std::string_view subject = StripWhitespace(fields[0]);
    const std::string_view predicate = StripWhitespace(fields[1]);
    const std::string_view object = StripWhitespace(fields[2]);
    if (subject.empty() || predicate.empty() || object.empty()) {
      return Status::InvalidArgument(
          StrFormat("line %llu: empty subject/predicate/object",
                    static_cast<unsigned long long>(line_number)));
    }

    Triple triple;
    triple.subject = symbols->Intern(subject);
    triple.predicate = symbols->Intern(predicate);
    triple.object = LooksLikeLiteral(object)
                        ? ObjectRef::Literal(symbols->Intern(object))
                        : ObjectRef::Entity(symbols->Intern(object));
    const TripleRef ref = kg->Add(triple);

    if (fields.size() == 4) {
      const std::string_view label = StripWhitespace(fields[3]);
      if (label != "0" && label != "1") {
        return Status::InvalidArgument(
            StrFormat("line %llu: label must be 0 or 1, got '%.*s'",
                      static_cast<unsigned long long>(line_number),
                      static_cast<int>(label.size()), label.data()));
      }
      if (labels != nullptr) {
        labels->push_back(LabeledTriple{ref, label == "1"});
      }
    }
  }
  if (in.bad()) return Status::IOError("stream error while reading TSV");
  triples_loaded->Add(kg->TotalTriples() - triples_before);
  return Status::OK();
}

Status LoadTsvFile(const std::string& path, SymbolTable* symbols,
                   KnowledgeGraph* kg, std::vector<LabeledTriple>* labels) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError(StrFormat("cannot open '%s' for reading", path.c_str()));
  }
  return LoadTsv(in, symbols, kg, labels);
}

Status WriteTsv(std::ostream& out, const SymbolTable& symbols,
                const KnowledgeGraph& kg) {
  for (const EntityCluster& cluster : kg.clusters()) {
    for (const Triple& t : cluster.triples) {
      out << symbols.Name(t.subject) << '\t' << symbols.Name(t.predicate) << '\t'
          << symbols.Name(t.object.id) << '\n';
    }
  }
  if (!out.good()) return Status::IOError("stream error while writing TSV");
  return Status::OK();
}

Status WriteTsvFile(const std::string& path, const SymbolTable& symbols,
                    const KnowledgeGraph& kg) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError(StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  return WriteTsv(out, symbols, kg);
}

}  // namespace kgacc
