#pragma once

#include <cstdint>
#include <vector>

#include "kg/kg_view.h"
#include "util/logging.h"

namespace kgacc {

/// A KgView over a subset of another view's clusters, re-indexed densely.
/// Used by stratified evaluation (each stratum is a subset of clusters) and
/// by incremental evaluation (the Delta stratum is the suffix of new
/// clusters). Lookups translate local -> parent cluster ids via `ToParent`.
class SubsetView : public KgView {
 public:
  SubsetView(const KgView& parent, std::vector<uint32_t> cluster_indices)
      : parent_(parent), indices_(std::move(cluster_indices)) {
    for (uint32_t parent_index : indices_) {
      KGACC_CHECK(parent_index < parent_.NumClusters());
      total_triples_ += parent_.ClusterSize(parent_index);
    }
  }

  /// Convenience: the contiguous cluster range [first, first + count) of the
  /// parent — the shape every update batch takes in the evolving substrate.
  static SubsetView Range(const KgView& parent, uint64_t first, uint64_t count) {
    std::vector<uint32_t> indices(count);
    for (uint64_t i = 0; i < count; ++i) {
      indices[i] = static_cast<uint32_t>(first + i);
    }
    return SubsetView(parent, std::move(indices));
  }

  uint64_t NumClusters() const override { return indices_.size(); }
  uint64_t ClusterSize(uint64_t cluster) const override {
    return parent_.ClusterSize(ToParent(cluster));
  }
  uint64_t TotalTriples() const override { return total_triples_; }

  /// Maps a local cluster index to the parent's cluster index.
  uint64_t ToParent(uint64_t local) const {
    KGACC_DCHECK(local < indices_.size());
    return indices_[local];
  }

 private:
  const KgView& parent_;
  std::vector<uint32_t> indices_;
  uint64_t total_triples_ = 0;
};

}  // namespace kgacc
