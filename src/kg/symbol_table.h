#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace kgacc {

/// Bidirectional interning of strings to dense uint32 ids. Ids are assigned
/// in first-seen order starting at 0. Used for entity names, predicates and
/// literals when graphs are loaded from text.
class SymbolTable {
 public:
  /// Returns the id for `name`, interning it if unseen.
  uint32_t Intern(std::string_view name);

  /// Returns the id for `name` or an error when it was never interned.
  Result<uint32_t> Lookup(std::string_view name) const;

  /// Returns the string for `id`; id must be < size().
  const std::string& Name(uint32_t id) const;

  bool Contains(std::string_view name) const;

  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }
  bool empty() const { return names_.empty(); }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace kgacc
