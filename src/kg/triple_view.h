#pragma once

#include <cstdint>

#include "kg/kg_view.h"
#include "kg/triple.h"

namespace kgacc {

/// A KgView whose triples are individually addressable — the contract the
/// triple-consuming layers (the KGEval coupling graph, per-predicate grouped
/// evaluation, store export) program against. Two implementations exist:
///   - KnowledgeGraph: triples materialized in RAM as entity clusters;
///   - MappedGraph (kg/store): triples memory-mapped from a columnar
///     kgacc-kgstore-v1 file, served zero-copy for graphs larger than RAM.
/// Sampling designs themselves stay on plain KgView (sizes only), so both
/// backends — and size-only ClusterPopulation — feed them identically.
class TripleView : public KgView {
 public:
  /// The triple at a sampled position. Returned by value: columnar backends
  /// assemble the 12-byte struct from per-field columns, so there is no
  /// single Triple object to reference.
  virtual Triple TripleAt(const TripleRef& ref) const = 0;

  /// Subject id of cluster `cluster` (< NumClusters()).
  virtual EntityId ClusterSubject(uint64_t cluster) const = 0;
};

}  // namespace kgacc
