#include "kg/knowledge_graph.h"

#include "kg/delta.h"
#include "util/logging.h"

namespace kgacc {

TripleRef KnowledgeGraph::Add(const Triple& triple) {
  uint64_t cluster_index;
  auto it = cluster_of_subject_.find(triple.subject);
  if (it == cluster_of_subject_.end()) {
    cluster_index = clusters_.size();
    clusters_.push_back(EntityCluster{triple.subject, {}});
    cluster_of_subject_.emplace(triple.subject, cluster_index);
  } else {
    cluster_index = it->second;
  }
  EntityCluster& cluster = clusters_[cluster_index];
  cluster.triples.push_back(triple);
  ++total_triples_;
  return TripleRef{cluster_index, cluster.triples.size() - 1};
}

void KnowledgeGraph::Apply(const UpdateBatch& batch, bool as_new_clusters) {
  for (const ClusterDelta& delta : batch.deltas()) {
    if (as_new_clusters) {
      const uint64_t cluster_index = clusters_.size();
      clusters_.push_back(EntityCluster{delta.subject, delta.triples});
      // Keep the original cluster as the subject's canonical index; register
      // only unseen subjects.
      cluster_of_subject_.emplace(delta.subject, cluster_index);
      total_triples_ += delta.triples.size();
    } else {
      for (const Triple& t : delta.triples) Add(t);
    }
  }
}

uint64_t KnowledgeGraph::ClusterSize(uint64_t cluster) const {
  KGACC_DCHECK(cluster < clusters_.size());
  return clusters_[cluster].triples.size();
}

const EntityCluster& KnowledgeGraph::Cluster(uint64_t index) const {
  KGACC_CHECK(index < clusters_.size())
      << "cluster index " << index << " out of range (" << clusters_.size() << ")";
  return clusters_[index];
}

const Triple& KnowledgeGraph::At(const TripleRef& ref) const {
  const EntityCluster& cluster = Cluster(ref.cluster);
  KGACC_CHECK(ref.offset < cluster.triples.size())
      << "triple offset " << ref.offset << " out of range in cluster "
      << ref.cluster;
  return cluster.triples[ref.offset];
}

uint64_t KnowledgeGraph::FindCluster(EntityId subject) const {
  auto it = cluster_of_subject_.find(subject);
  return it == cluster_of_subject_.end() ? clusters_.size() : it->second;
}

}  // namespace kgacc
