#pragma once

#include <cstdint>
#include <vector>

#include "kg/triple.h"

namespace kgacc {

/// All insertions of one update batch that share a subject: the paper's
/// Delta_e (Section 2.1). Treated as an independent entity cluster by the
/// incremental evaluators so that first-stage sampling weights never change
/// retroactively.
struct ClusterDelta {
  EntityId subject = kInvalidId;
  std::vector<Triple> triples;

  uint64_t size() const { return triples.size(); }
};

/// A batch of triple-level insertions Delta, clustered by subject id.
class UpdateBatch {
 public:
  UpdateBatch() = default;

  /// Groups a flat list of insertions by subject, preserving first-seen
  /// subject order (deterministic for a deterministic input order).
  static UpdateBatch FromTriples(const std::vector<Triple>& triples);

  void AddDelta(ClusterDelta delta);

  const std::vector<ClusterDelta>& deltas() const { return deltas_; }
  uint64_t NumEntities() const { return deltas_.size(); }
  uint64_t TotalTriples() const { return total_triples_; }
  bool empty() const { return deltas_.empty(); }

 private:
  std::vector<ClusterDelta> deltas_;
  uint64_t total_triples_ = 0;
};

}  // namespace kgacc
