#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "kg/knowledge_graph.h"
#include "kg/symbol_table.h"
#include "kg/triple.h"
#include "util/status.h"

namespace kgacc {

/// A gold correctness label attached to a loaded triple.
struct LabeledTriple {
  TripleRef ref;
  bool correct = false;
};

/// Tab-separated triple format, one triple per line:
///
///   subject \t predicate \t object [ \t label ]
///
/// - Blank lines and lines starting with '#' are skipped.
/// - `label`, when present, must be 0 or 1 (human gold annotation).
/// - The object is treated as a literal (data property) when it starts with
///   a digit, '"', '+' or '-'; otherwise it is interned as an entity.
///
/// Entities, predicates and literals are interned into three independent
/// id spaces of `symbols` (a shared table keeps ids unique across roles).

/// Loads triples from a stream into `kg`. Labels (if any) are appended to
/// `labels` when non-null; mixing labeled and unlabeled lines is allowed.
Status LoadTsv(std::istream& in, SymbolTable* symbols, KnowledgeGraph* kg,
               std::vector<LabeledTriple>* labels = nullptr);

/// Loads triples from a file. See LoadTsv(std::istream&, ...).
Status LoadTsvFile(const std::string& path, SymbolTable* symbols,
                   KnowledgeGraph* kg,
                   std::vector<LabeledTriple>* labels = nullptr);

/// Writes `kg` in the TSV format above (without labels).
Status WriteTsv(std::ostream& out, const SymbolTable& symbols,
                const KnowledgeGraph& kg);

/// Writes `kg` to a file. See WriteTsv(std::ostream&, ...).
Status WriteTsvFile(const std::string& path, const SymbolTable& symbols,
                    const KnowledgeGraph& kg);

}  // namespace kgacc
