#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kg/kg_view.h"
#include "kg/triple.h"
#include "kg/triple_view.h"

namespace kgacc {

class UpdateBatch;

/// All triples sharing one subject id: the paper's G[e] (Section 2.1), the
/// unit of the annotation cost model and of cluster sampling.
struct EntityCluster {
  EntityId subject = kInvalidId;
  std::vector<Triple> triples;

  uint64_t size() const { return triples.size(); }
};

/// Fully materialized in-memory knowledge graph, stored as entity clusters
/// with a subject -> cluster index. Supports append-only growth (the paper
/// considers only triple insertions).
class KnowledgeGraph : public TripleView {
 public:
  /// Appends a triple; creates the subject's cluster if needed.
  /// Returns the position the triple was stored at.
  TripleRef Add(const Triple& triple);

  /// Applies an update batch. When `as_new_clusters` is true each per-entity
  /// delta becomes an independent cluster even if the subject already exists
  /// (the weight-freezing trick of Section 6.1); otherwise deltas merge into
  /// existing clusters.
  void Apply(const UpdateBatch& batch, bool as_new_clusters = false);

  // KgView:
  uint64_t NumClusters() const override { return clusters_.size(); }
  uint64_t ClusterSize(uint64_t cluster) const override;
  uint64_t TotalTriples() const override { return total_triples_; }

  // TripleView:
  Triple TripleAt(const TripleRef& ref) const override { return At(ref); }
  EntityId ClusterSubject(uint64_t cluster) const override {
    return Cluster(cluster).subject;
  }

  const EntityCluster& Cluster(uint64_t index) const;

  /// The triple at a sampled position (by reference; TripleAt is the
  /// backend-agnostic by-value accessor).
  const Triple& At(const TripleRef& ref) const;

  /// Index of the (first) cluster for `subject`, or kInvalidId-like sentinel
  /// (NumClusters()) when the subject is absent. When deltas were applied
  /// with `as_new_clusters`, a subject can own several clusters; this returns
  /// the original one.
  uint64_t FindCluster(EntityId subject) const;

  const std::vector<EntityCluster>& clusters() const { return clusters_; }

 private:
  std::vector<EntityCluster> clusters_;
  std::unordered_map<EntityId, uint64_t> cluster_of_subject_;
  uint64_t total_triples_ = 0;
};

}  // namespace kgacc
