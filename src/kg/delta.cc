#include "kg/delta.h"

#include <unordered_map>

namespace kgacc {

UpdateBatch UpdateBatch::FromTriples(const std::vector<Triple>& triples) {
  UpdateBatch batch;
  std::unordered_map<EntityId, size_t> delta_of_subject;
  for (const Triple& t : triples) {
    auto it = delta_of_subject.find(t.subject);
    if (it == delta_of_subject.end()) {
      delta_of_subject.emplace(t.subject, batch.deltas_.size());
      batch.deltas_.push_back(ClusterDelta{t.subject, {t}});
    } else {
      batch.deltas_[it->second].triples.push_back(t);
    }
    ++batch.total_triples_;
  }
  return batch;
}

void UpdateBatch::AddDelta(ClusterDelta delta) {
  total_triples_ += delta.triples.size();
  deltas_.push_back(std::move(delta));
}

}  // namespace kgacc
