#pragma once

#include <cstdint>
#include <functional>

namespace kgacc {

/// Interned identifier of an entity (subjects and entity-valued objects).
using EntityId = uint32_t;

/// Interned identifier of a predicate.
using PredicateId = uint32_t;

/// Interned identifier of a literal value (dates, numbers, strings).
using LiteralId = uint32_t;

constexpr uint32_t kInvalidId = 0xffffffffu;

/// Whether a triple's object is an entity ("entity property" in the paper)
/// or an atomic value ("data property").
enum class ObjectKind : uint8_t { kEntity = 0, kLiteral = 1 };

/// The object slot of a triple: an interned id tagged with its kind.
struct ObjectRef {
  uint32_t id = kInvalidId;
  ObjectKind kind = ObjectKind::kEntity;

  static ObjectRef Entity(EntityId id) { return {id, ObjectKind::kEntity}; }
  static ObjectRef Literal(LiteralId id) { return {id, ObjectKind::kLiteral}; }

  bool IsEntity() const { return kind == ObjectKind::kEntity; }

  bool operator==(const ObjectRef& other) const {
    return id == other.id && kind == other.kind;
  }
};

/// One (subject, predicate, object) fact. 12 bytes; ids refer to a
/// SymbolTable when the graph is loaded from text, or are synthetic for
/// generated graphs.
struct Triple {
  EntityId subject = kInvalidId;
  PredicateId predicate = kInvalidId;
  ObjectRef object;

  bool operator==(const Triple& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object;
  }
};

/// Position of a triple inside a clustered graph: cluster index plus the
/// offset of the triple within that cluster. This is the unit every sampling
/// design and TruthOracle operates on — it works identically for materialized
/// KnowledgeGraph and for size-only ClusterPopulation views.
struct TripleRef {
  uint64_t cluster = 0;
  uint64_t offset = 0;

  bool operator==(const TripleRef& other) const {
    return cluster == other.cluster && offset == other.offset;
  }
  bool operator<(const TripleRef& other) const {
    return cluster != other.cluster ? cluster < other.cluster
                                    : offset < other.offset;
  }
};

struct TripleRefHash {
  size_t operator()(const TripleRef& ref) const {
    // 64-bit mix of the two coordinates.
    uint64_t h = ref.cluster * 0x9e3779b97f4a7c15ULL;
    h ^= ref.offset + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace kgacc
