#include "kg/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "kg/store/store_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace kgacc {

namespace {

/// Builds the CDF of a truncated Zipf over {1..max} with exponent s.
std::vector<double> ZipfCdf(uint32_t max, double s) {
  std::vector<double> cdf(max);
  double total = 0.0;
  for (uint32_t k = 1; k <= max; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
    cdf[k - 1] = total;
  }
  for (double& v : cdf) v /= total;
  return cdf;
}

uint32_t SampleFromCdf(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<uint32_t>(it - cdf.begin()) + 1;
}

/// Zipfian-popularity CDF over the object entity pool.
std::vector<double> ObjectCdf(const GraphMaterializeOptions& options) {
  std::vector<double> cdf(options.object_pool);
  double total = 0.0;
  for (uint32_t k = 1; k <= options.object_pool; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), options.object_zipf_s);
    cdf[k - 1] = total;
  }
  for (double& v : cdf) v /= total;
  return cdf;
}

/// One triple's predicate/object draws. Both materialization paths go
/// through here so their Rng sequences — and hence their outputs — are
/// guaranteed identical for a given seed.
Triple DrawTriple(EntityId subject, uint64_t num_subjects,
                  const GraphMaterializeOptions& options,
                  const std::vector<double>& object_cdf, Rng& rng) {
  Triple t;
  t.subject = subject;
  t.predicate =
      static_cast<PredicateId>(rng.UniformIndex(options.num_predicates));
  if (rng.Bernoulli(options.literal_fraction)) {
    t.object = ObjectRef::Literal(
        static_cast<LiteralId>(rng.UniformIndex(options.num_literals)));
  } else {
    const double u = rng.UniformDouble();
    const auto it = std::lower_bound(object_cdf.begin(), object_cdf.end(), u);
    // Object entity ids live above the subject id range to keep the two
    // spaces disjoint.
    const auto popular = static_cast<uint32_t>(it - object_cdf.begin());
    t.object =
        ObjectRef::Entity(static_cast<EntityId>(num_subjects) + popular);
  }
  return t;
}

}  // namespace

std::vector<uint32_t> GenerateZipfSizes(uint64_t num_clusters, double s,
                                        uint32_t max_size, Rng& rng) {
  KGACC_CHECK(max_size >= 1);
  const std::vector<double> cdf = ZipfCdf(max_size, s);
  std::vector<uint32_t> sizes(num_clusters);
  for (auto& size : sizes) size = SampleFromCdf(cdf, rng);
  return sizes;
}

std::vector<uint32_t> GenerateLogNormalSizes(uint64_t num_clusters,
                                             double mu_log, double sigma_log,
                                             uint32_t max_size, Rng& rng) {
  KGACC_CHECK(max_size >= 1);
  std::vector<uint32_t> sizes(num_clusters);
  for (auto& size : sizes) {
    const double raw = std::exp(rng.Gaussian(mu_log, sigma_log));
    const double capped = std::clamp(std::ceil(raw), 1.0,
                                     static_cast<double>(max_size));
    size = static_cast<uint32_t>(capped);
  }
  return sizes;
}

void ScaleSizesToTotal(std::vector<uint32_t>* sizes, uint64_t target_total) {
  KGACC_CHECK(!sizes->empty());
  KGACC_CHECK(target_total >= sizes->size())
      << "target total smaller than cluster count; clusters must be non-empty";
  uint64_t current = std::accumulate(sizes->begin(), sizes->end(), uint64_t{0});
  const double factor =
      static_cast<double>(target_total) / static_cast<double>(current);
  uint64_t scaled_total = 0;
  for (auto& s : *sizes) {
    s = std::max<uint32_t>(1, static_cast<uint32_t>(std::llround(s * factor)));
    scaled_total += s;
  }
  // Fix up the rounding drift on the largest clusters (deterministic order).
  std::vector<size_t> order(sizes->size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*sizes)[a] > (*sizes)[b];
  });
  size_t i = 0;
  while (scaled_total < target_total) {
    ++(*sizes)[order[i % order.size()]];
    ++scaled_total;
    ++i;
  }
  while (scaled_total > target_total) {
    uint32_t& s = (*sizes)[order[i % order.size()]];
    if (s > 1) {
      --s;
      --scaled_total;
    }
    ++i;
  }
}

KnowledgeGraph MaterializeGraph(const std::vector<uint32_t>& sizes,
                                const GraphMaterializeOptions& options,
                                Rng& rng) {
  KGACC_CHECK(options.num_predicates >= 1);
  KGACC_CHECK(options.object_pool >= 1);
  static obs::Histogram* const materialize_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "kg.generator.materialize_seconds");
  obs::ScopedSpan span("kg.generator.materialize", materialize_seconds);
  KnowledgeGraph kg;
  const std::vector<double> object_cdf = ObjectCdf(options);
  for (uint32_t subject = 0; subject < sizes.size(); ++subject) {
    for (uint32_t j = 0; j < sizes[subject]; ++j) {
      kg.Add(DrawTriple(subject, sizes.size(), options, object_cdf, rng));
    }
  }
  return kg;
}

Status MaterializeGraphToStore(const std::vector<uint32_t>& sizes,
                               const GraphMaterializeOptions& options,
                               Rng& rng, const std::string& path,
                               const TruthOracle* labels) {
  KGACC_CHECK(options.num_predicates >= 1);
  KGACC_CHECK(options.object_pool >= 1);
  static obs::Histogram* const stream_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "kg.generator.stream_to_store_seconds");
  obs::ScopedSpan span("kg.generator.stream_to_store", stream_seconds);

  uint64_t total = 0;
  for (const uint32_t s : sizes) total += s;
  StoreWriter::Options writer_options;
  writer_options.with_labels = labels != nullptr;
  KGACC_ASSIGN_OR_RETURN(
      StoreWriter writer,
      StoreWriter::Create(path, sizes.size(), total, writer_options));

  const std::vector<double> object_cdf = ObjectCdf(options);
  for (uint32_t subject = 0; subject < sizes.size(); ++subject) {
    KGACC_RETURN_IF_ERROR(writer.BeginCluster(subject));
    for (uint32_t j = 0; j < sizes[subject]; ++j) {
      const Triple t =
          DrawTriple(subject, sizes.size(), options, object_cdf, rng);
      const bool correct =
          labels != nullptr && labels->IsCorrect(TripleRef{subject, j});
      KGACC_RETURN_IF_ERROR(writer.AddTriple(t.predicate, t.object, correct));
    }
  }
  return writer.Finish();
}

}  // namespace kgacc
