#include "kg/cluster_population.h"

#include "util/logging.h"

namespace kgacc {

ClusterPopulation::ClusterPopulation(std::vector<uint32_t> sizes)
    : sizes_(std::move(sizes)) {
  for (uint32_t s : sizes_) total_triples_ += s;
}

uint64_t ClusterPopulation::Append(uint32_t size) {
  KGACC_DCHECK(size > 0) << "clusters must be non-empty";
  sizes_.push_back(size);
  total_triples_ += size;
  return sizes_.size() - 1;
}

void ClusterPopulation::AppendAll(const std::vector<uint32_t>& sizes) {
  sizes_.reserve(sizes_.size() + sizes.size());
  for (uint32_t s : sizes) Append(s);
}

uint64_t ClusterPopulation::ClusterSize(uint64_t cluster) const {
  KGACC_DCHECK(cluster < sizes_.size());
  return sizes_[cluster];
}

}  // namespace kgacc
