#pragma once

namespace kgacc {

/// Standard normal cumulative distribution function Phi(x).
double NormalCdf(double x);

/// Standard normal probability density function phi(x).
double NormalPdf(double x);

/// Inverse of Phi: returns x with Phi(x) = p, for p in (0, 1).
/// Acklam's rational approximation refined with one Halley step;
/// absolute error < 1e-12 over (1e-300, 1 - 1e-16).
double NormalQuantile(double p);

/// Two-sided normal critical value z_{alpha/2}: the value z such that a
/// standard normal variable lies in [-z, z] with probability 1 - alpha.
/// E.g. ZCritical(0.05) ~= 1.95996.
double ZCritical(double alpha);

}  // namespace kgacc
