#pragma once

#include <cstdint>
#include <vector>

namespace kgacc {

/// Theoretical variance machinery for the paper's estimators (Section 5).
///
/// The central quantity is the per-draw variance V(m) of two-stage weighted
/// cluster sampling (TWCS, paper Eq 10):
///
///   V(m) = (1/M) * ( sum_i M_i (mu_i - mu)^2
///                    + (1/m) * sum_{i: M_i > m} (M_i - m)/(M_i - 1)
///                                                * M_i * mu_i (1 - mu_i) )
///
/// so that Var(mu_hat_{w,m}) = V(m) / n for n first-stage draws.

/// Exact population description: per-cluster sizes and accuracies.
struct ClusterPopulationStats {
  std::vector<uint64_t> sizes;       ///< M_i, size of each entity cluster.
  std::vector<double> accuracies;    ///< mu_i in [0,1] per cluster.

  uint64_t TotalTriples() const;
  /// Triple-weighted population accuracy mu = sum M_i mu_i / M.
  double PopulationAccuracy() const;
};

/// V(m) from paper Eq 10. `m` >= 1.
double TwcsPerDrawVariance(const ClusterPopulationStats& pop, uint64_t m);

/// Variance of the TWCS estimator with n first-stage draws: V(m)/n.
double TwcsEstimatorVariance(const ClusterPopulationStats& pop, uint64_t m,
                             uint64_t n);

/// Per-draw variance of SRS on the triple population: mu(1-mu).
double SrsPerDrawVariance(double mu);

/// Number of i.i.d. units needed for MoE <= epsilon at confidence 1-alpha,
/// given per-unit variance `per_unit_variance`: ceil(V z^2 / eps^2).
uint64_t RequiredUnits(double per_unit_variance, double alpha, double epsilon);

/// Predicted annotation cost bounds for TWCS as a function of m (the Fig 6
/// theoretical ribbon): with n(m) = RequiredUnits(V(m), ...),
///   upper bound: all sampled clusters have >= m triples -> n (c1 + m c2)
///   lower bound: all sampled clusters are singletons    -> n (c1 + c2)
struct TwcsCostBand {
  uint64_t required_draws = 0;
  double upper_seconds = 0.0;
  double lower_seconds = 0.0;
};
TwcsCostBand TwcsPredictedCost(const ClusterPopulationStats& pop, uint64_t m,
                               double alpha, double epsilon, double c1_seconds,
                               double c2_seconds);

}  // namespace kgacc
