#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kgacc {

/// A partition of cluster indices into non-overlapping strata, plus each
/// stratum's weight W_h = (triples in stratum h) / (total triples)
/// (paper Section 5.3, Eq 13).
struct Strata {
  std::vector<std::vector<uint32_t>> members;  ///< cluster indices per stratum.
  std::vector<double> weights;                 ///< W_h, sums to 1.

  size_t NumStrata() const { return members.size(); }
};

/// Dalenius–Hodges cumulative-sqrt(F) stratum boundaries over `values`
/// (paper's "Size Stratification" uses cluster sizes). Builds an equi-width
/// histogram with `num_bins` bins, accumulates sqrt(frequency), and cuts it
/// into `num_strata` equal segments. Returns `num_strata - 1` ascending value
/// boundaries; stratum h = { v : boundary[h-1] < v <= boundary[h] }.
/// Degenerate inputs (all values equal, fewer distinct values than strata)
/// return fewer boundaries.
std::vector<double> CumulativeSqrtFBoundaries(const std::vector<double>& values,
                                              int num_strata, int num_bins = 256);

/// Assigns each value to a stratum given ascending boundaries; value v goes
/// to the first stratum whose boundary is >= v (last stratum if none).
std::vector<uint32_t> AssignStrata(const std::vector<double>& values,
                                   const std::vector<double>& boundaries);

/// Builds Strata over clusters from a per-cluster signal (e.g. size for size
/// stratification, true accuracy for oracle stratification). Empty strata are
/// dropped. `sizes` provides the triple mass used for W_h.
Strata StratifyClusters(const std::vector<double>& signal,
                        const std::vector<uint64_t>& sizes, int num_strata);

}  // namespace kgacc
