#pragma once

#include <cstdint>
#include <vector>

namespace kgacc {

/// Sample-allocation rules for stratified designs (paper Section 5.3).
/// Both return per-stratum unit counts summing exactly to `total_units`
/// (largest-remainder rounding), with every non-empty stratum receiving at
/// least `min_per_stratum` units when total_units permits.

/// Proportional allocation: n_h proportional to W_h.
std::vector<uint64_t> ProportionalAllocation(const std::vector<double>& weights,
                                             uint64_t total_units,
                                             uint64_t min_per_stratum = 1);

/// Neyman allocation: n_h proportional to W_h * S_h, where S_h is the
/// per-stratum standard deviation (optimal for fixed total sample size).
/// Falls back to proportional allocation when all S_h are zero.
std::vector<uint64_t> NeymanAllocation(const std::vector<double>& weights,
                                       const std::vector<double>& stddevs,
                                       uint64_t total_units,
                                       uint64_t min_per_stratum = 1);

}  // namespace kgacc
