#include "stats/variance.h"

#include <cmath>

#include "stats/normal.h"
#include "util/logging.h"

namespace kgacc {

uint64_t ClusterPopulationStats::TotalTriples() const {
  uint64_t total = 0;
  for (uint64_t s : sizes) total += s;
  return total;
}

double ClusterPopulationStats::PopulationAccuracy() const {
  KGACC_CHECK(sizes.size() == accuracies.size());
  double weighted = 0.0;
  uint64_t total = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    weighted += static_cast<double>(sizes[i]) * accuracies[i];
    total += sizes[i];
  }
  return total > 0 ? weighted / static_cast<double>(total) : 0.0;
}

double TwcsPerDrawVariance(const ClusterPopulationStats& pop, uint64_t m) {
  KGACC_CHECK(m >= 1) << "second-stage size m must be >= 1";
  KGACC_CHECK(pop.sizes.size() == pop.accuracies.size());
  const double total = static_cast<double>(pop.TotalTriples());
  if (total == 0.0) return 0.0;
  const double mu = pop.PopulationAccuracy();

  double between = 0.0;   // sum_i M_i (mu_i - mu)^2
  double within = 0.0;    // sum_{M_i > m} (M_i-m)/(M_i-1) M_i mu_i(1-mu_i)
  for (size_t i = 0; i < pop.sizes.size(); ++i) {
    const double mi = static_cast<double>(pop.sizes[i]);
    const double mui = pop.accuracies[i];
    const double dev = mui - mu;
    between += mi * dev * dev;
    if (pop.sizes[i] > m) {
      within += (mi - static_cast<double>(m)) / (mi - 1.0) * mi * mui * (1.0 - mui);
    }
  }
  return (between + within / static_cast<double>(m)) / total;
}

double TwcsEstimatorVariance(const ClusterPopulationStats& pop, uint64_t m,
                             uint64_t n) {
  KGACC_CHECK(n >= 1);
  return TwcsPerDrawVariance(pop, m) / static_cast<double>(n);
}

double SrsPerDrawVariance(double mu) { return mu * (1.0 - mu); }

uint64_t RequiredUnits(double per_unit_variance, double alpha, double epsilon) {
  KGACC_CHECK(epsilon > 0.0);
  const double z = ZCritical(alpha);
  const double n = per_unit_variance * z * z / (epsilon * epsilon);
  return static_cast<uint64_t>(std::ceil(std::max(1.0, n)));
}

TwcsCostBand TwcsPredictedCost(const ClusterPopulationStats& pop, uint64_t m,
                               double alpha, double epsilon, double c1_seconds,
                               double c2_seconds) {
  TwcsCostBand band;
  band.required_draws = RequiredUnits(TwcsPerDrawVariance(pop, m), alpha, epsilon);
  const double n = static_cast<double>(band.required_draws);
  band.upper_seconds = n * (c1_seconds + static_cast<double>(m) * c2_seconds);
  band.lower_seconds = n * (c1_seconds + c2_seconds);
  return band;
}

}  // namespace kgacc
