#pragma once

#include <cmath>
#include <cstdint>

#include "util/logging.h"

namespace kgacc {

/// Numerically stable accumulator of mean and variance (Welford's online
/// algorithm) with support for merging two accumulators (Chan et al.).
class RunningStats {
 public:
  /// Reconstructs an accumulator from its serialized moments (persistence of
  /// incremental-evaluation state).
  static RunningStats Restore(uint64_t count, double mean, double m2) {
    RunningStats stats;
    stats.count_ = count;
    stats.mean_ = mean;
    stats.m2_ = m2;
    return stats;
  }

  /// Second central moment sum (for serialization; variance * (n-1)).
  double M2() const { return m2_; }

  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
  }

  uint64_t Count() const { return count_; }

  double Mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample variance (divides by n - 1); 0 when n < 2.
  double SampleVariance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  /// Population variance (divides by n); 0 when n == 0.
  double PopulationVariance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  double SampleStdDev() const { return std::sqrt(SampleVariance()); }

  /// Variance of the sample mean: s^2 / n (the CLT plug-in used throughout
  /// the paper's CI constructions); 0 when n < 2.
  double VarianceOfMean() const {
    return count_ > 1 ? SampleVariance() / static_cast<double>(count_) : 0.0;
  }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace kgacc
