#include "stats/confidence.h"

#include <algorithm>
#include <cmath>

#include "stats/normal.h"
#include "util/logging.h"

namespace kgacc {

ConfidenceInterval NormalInterval(double mean, double variance_of_mean,
                                  double alpha) {
  const double moe = ZCritical(alpha) * std::sqrt(std::max(0.0, variance_of_mean));
  return {std::max(0.0, mean - moe), std::min(1.0, mean + moe)};
}

ConfidenceInterval WilsonInterval(uint64_t successes, uint64_t n, double alpha) {
  if (n == 0) return {0.0, 1.0};
  KGACC_CHECK(successes <= n);
  const double z = ZCritical(alpha);
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

ConfidenceInterval EmpiricalInterval(std::vector<double> values, double alpha) {
  if (values.empty()) return {0.0, 1.0};
  std::sort(values.begin(), values.end());
  const auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(pos));
    const size_t hi = std::min(values.size() - 1, lo + 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  return {quantile(alpha / 2.0), quantile(1.0 - alpha / 2.0)};
}

}  // namespace kgacc
