#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "stats/normal.h"

namespace kgacc {

/// A point estimate of a population mean together with the variance of the
/// estimator, as produced by every sampling design in this library.
///
/// `num_units` counts the independent sampling units behind the estimate
/// (triples for SRS, first-stage cluster draws for the cluster designs) —
/// the quantity the CLT rule of thumb (n > 30) applies to.
struct Estimate {
  double mean = 0.0;
  double variance_of_mean = 0.0;
  uint64_t num_units = 0;

  double StandardError() const { return std::sqrt(std::max(0.0, variance_of_mean)); }

  /// Margin of error: half-width of the 1-alpha normal CI (paper Eq 1).
  double MarginOfError(double alpha) const {
    return ZCritical(alpha) * StandardError();
  }

  /// CI bounds clamped to the accuracy domain [0, 1].
  double CiLower(double alpha) const {
    return std::max(0.0, mean - MarginOfError(alpha));
  }
  double CiUpper(double alpha) const {
    return std::min(1.0, mean + MarginOfError(alpha));
  }
};

}  // namespace kgacc
