#include "stats/stratification.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace kgacc {

std::vector<double> CumulativeSqrtFBoundaries(const std::vector<double>& values,
                                              int num_strata, int num_bins) {
  KGACC_CHECK(num_strata >= 1);
  KGACC_CHECK(num_bins >= num_strata);
  if (values.empty() || num_strata == 1) return {};

  const auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *min_it;
  const double hi = *max_it;
  if (lo == hi) return {};  // single point mass: one stratum.

  const double bin_width = (hi - lo) / static_cast<double>(num_bins);
  std::vector<uint64_t> freq(static_cast<size_t>(num_bins), 0);
  for (double v : values) {
    int bin = static_cast<int>((v - lo) / bin_width);
    bin = std::clamp(bin, 0, num_bins - 1);
    ++freq[static_cast<size_t>(bin)];
  }

  std::vector<double> cum_sqrt_f(freq.size());
  double running = 0.0;
  for (size_t i = 0; i < freq.size(); ++i) {
    running += std::sqrt(static_cast<double>(freq[i]));
    cum_sqrt_f[i] = running;
  }
  const double total = running;

  std::vector<double> boundaries;
  boundaries.reserve(static_cast<size_t>(num_strata - 1));
  size_t bin = 0;
  for (int h = 1; h < num_strata; ++h) {
    const double target = total * static_cast<double>(h) /
                          static_cast<double>(num_strata);
    while (bin + 1 < cum_sqrt_f.size() && cum_sqrt_f[bin] < target) ++bin;
    const double edge = lo + bin_width * static_cast<double>(bin + 1);
    if (boundaries.empty() || edge > boundaries.back()) {
      boundaries.push_back(edge);
    }
  }
  return boundaries;
}

std::vector<uint32_t> AssignStrata(const std::vector<double>& values,
                                   const std::vector<double>& boundaries) {
  std::vector<uint32_t> assignment(values.size(), 0);
  for (size_t i = 0; i < values.size(); ++i) {
    const auto it =
        std::lower_bound(boundaries.begin(), boundaries.end(), values[i]);
    assignment[i] = static_cast<uint32_t>(it - boundaries.begin());
  }
  return assignment;
}

Strata StratifyClusters(const std::vector<double>& signal,
                        const std::vector<uint64_t>& sizes, int num_strata) {
  KGACC_CHECK(signal.size() == sizes.size());
  const std::vector<double> boundaries =
      CumulativeSqrtFBoundaries(signal, num_strata);
  const std::vector<uint32_t> assignment = AssignStrata(signal, boundaries);
  const size_t h_count = boundaries.size() + 1;

  Strata strata;
  strata.members.resize(h_count);
  std::vector<uint64_t> stratum_triples(h_count, 0);
  uint64_t total_triples = 0;
  for (size_t i = 0; i < signal.size(); ++i) {
    const uint32_t h = assignment[i];
    strata.members[h].push_back(static_cast<uint32_t>(i));
    stratum_triples[h] += sizes[i];
    total_triples += sizes[i];
  }

  // Drop empty strata (possible when boundaries collapse).
  Strata compact;
  for (size_t h = 0; h < h_count; ++h) {
    if (strata.members[h].empty()) continue;
    compact.members.push_back(std::move(strata.members[h]));
    compact.weights.push_back(total_triples > 0
                                  ? static_cast<double>(stratum_triples[h]) /
                                        static_cast<double>(total_triples)
                                  : 0.0);
  }
  return compact;
}

}  // namespace kgacc
