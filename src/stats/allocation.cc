#include "stats/allocation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace kgacc {

namespace {

/// Largest-remainder apportionment of `total_units` according to `scores`,
/// guaranteeing `min_per_stratum` per stratum when feasible.
std::vector<uint64_t> Apportion(const std::vector<double>& scores,
                                uint64_t total_units, uint64_t min_per_stratum) {
  const size_t h = scores.size();
  std::vector<uint64_t> out(h, 0);
  if (h == 0 || total_units == 0) return out;

  const uint64_t reserved = std::min<uint64_t>(total_units, min_per_stratum * h);
  const uint64_t floor_each = reserved / h;
  for (auto& v : out) v = floor_each;
  uint64_t remaining = total_units - floor_each * h;

  double score_sum = std::accumulate(scores.begin(), scores.end(), 0.0);
  if (score_sum <= 0.0) {
    // Degenerate: spread evenly.
    for (size_t i = 0; remaining > 0; i = (i + 1) % h, --remaining) ++out[i];
    return out;
  }

  std::vector<double> exact(h);
  std::vector<uint64_t> base(h);
  uint64_t assigned = 0;
  for (size_t i = 0; i < h; ++i) {
    exact[i] = static_cast<double>(remaining) * scores[i] / score_sum;
    base[i] = static_cast<uint64_t>(std::floor(exact[i]));
    assigned += base[i];
  }
  std::vector<size_t> order(h);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (exact[a] - std::floor(exact[a])) > (exact[b] - std::floor(exact[b]));
  });
  uint64_t leftover = remaining - assigned;
  for (size_t i = 0; i < h && leftover > 0; ++i, --leftover) ++base[order[i]];
  for (size_t i = 0; i < h; ++i) out[i] += base[i];
  return out;
}

}  // namespace

std::vector<uint64_t> ProportionalAllocation(const std::vector<double>& weights,
                                             uint64_t total_units,
                                             uint64_t min_per_stratum) {
  return Apportion(weights, total_units, min_per_stratum);
}

std::vector<uint64_t> NeymanAllocation(const std::vector<double>& weights,
                                       const std::vector<double>& stddevs,
                                       uint64_t total_units,
                                       uint64_t min_per_stratum) {
  KGACC_CHECK(weights.size() == stddevs.size());
  std::vector<double> scores(weights.size());
  double sum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    scores[i] = weights[i] * std::max(0.0, stddevs[i]);
    sum += scores[i];
  }
  if (sum <= 0.0) {
    return ProportionalAllocation(weights, total_units, min_per_stratum);
  }
  return Apportion(scores, total_units, min_per_stratum);
}

}  // namespace kgacc
