#pragma once

#include <cstdint>
#include <vector>

namespace kgacc {

/// A two-sided confidence interval.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 1.0;

  double Width() const { return upper - lower; }
  bool Contains(double x) const { return x >= lower && x <= upper; }
};

/// Normal (Wald) interval mean +- z * sqrt(variance_of_mean), clamped to [0,1].
ConfidenceInterval NormalInterval(double mean, double variance_of_mean,
                                  double alpha);

/// Wilson score interval for a binomial proportion with `successes` out of
/// `n` trials. Well-behaved near 0/1 where the Wald interval degenerates —
/// used for highly accurate KGs such as YAGO (paper footnote on Table 6).
ConfidenceInterval WilsonInterval(uint64_t successes, uint64_t n, double alpha);

/// Empirical interval: the (alpha/2, 1-alpha/2) quantiles of repeated-trial
/// estimates (paper reports this for YAGO where accuracy is capped at 100%).
/// `values` need not be sorted. Returns [0,1] when values is empty.
ConfidenceInterval EmpiricalInterval(std::vector<double> values, double alpha);

}  // namespace kgacc
