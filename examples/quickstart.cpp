// Quickstart: estimate the accuracy of a knowledge graph with a 5% margin
// of error at 95% confidence using TWCS — the paper's recommended design —
// while paying as little (simulated) annotation effort as possible.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "kgaccuracy.h"

int main() {
  using namespace kgacc;

  // 1. A knowledge graph. Here: the NELL-sports reconstruction (817 entity
  //    clusters, 1,860 triples, ~91% of them correct). Any KgView works —
  //    load your own graph with LoadTsvFile() or wrap cluster sizes in a
  //    ClusterPopulation.
  const Dataset nell = MakeNell(/*seed=*/42);

  // 2. An annotator. The library never looks at labels directly; it asks an
  //    annotator, which charges time per the paper's cost model:
  //    45 s to identify a new entity + 25 s to validate each triple (Eq 4).
  //    SimulatedAnnotator answers from the dataset's gold labels; a real
  //    deployment would implement the same interface over a crowd.
  const CostModel cost_model{.c1_seconds = 45.0, .c2_seconds = 25.0};
  SimulatedAnnotator annotator(nell.oracle.get(), cost_model);

  // 3. Evaluate. The framework samples entity clusters in small batches and
  //    stops as soon as the margin of error is below the target — no
  //    oversampling (Fig 2 of the paper).
  EvaluationOptions options;
  options.moe_target = 0.05;   // +-5 percentage points...
  options.confidence = 0.95;   // ...at 95% confidence.
  options.seed = 7;

  StaticEvaluator evaluator(nell.View(), &annotator, options);
  const EvaluationResult result = evaluator.EvaluateTwcs();

  // 4. Report.
  std::printf("design:            %s (second-stage m=%llu)\n",
              result.design.c_str(),
              static_cast<unsigned long long>(
                  evaluator.ResolveSecondStageSize()));
  std::printf("estimated accuracy: %s\n",
              FormatPercent(result.estimate.mean, 1).c_str());
  std::printf("95%% CI:            [%s, %s] (MoE %.1f%%)\n",
              FormatPercent(result.estimate.CiLower(options.Alpha()), 1).c_str(),
              FormatPercent(result.estimate.CiUpper(options.Alpha()), 1).c_str(),
              result.moe * 100.0);
  std::printf("annotation effort:  %llu entities identified, %llu triples "
              "validated\n",
              static_cast<unsigned long long>(result.ledger.entities_identified),
              static_cast<unsigned long long>(result.ledger.triples_annotated));
  std::printf("annotation time:    %s (simulated human time)\n",
              FormatDuration(result.annotation_seconds).c_str());
  std::printf("machine time:       %s (sample generation)\n",
              FormatDuration(result.machine_seconds).c_str());
  std::printf("converged:          %s after %llu rounds\n",
              result.converged ? "yes" : "no",
              static_cast<unsigned long long>(result.rounds));

  // For reference: the true accuracy this sample estimates.
  const double truth = RealizedOverallAccuracy(*nell.oracle, nell.View());
  std::printf("(ground truth:      %s)\n", FormatPercent(truth, 1).c_str());
  return 0;
}
