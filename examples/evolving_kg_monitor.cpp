// Continuous accuracy monitoring of an evolving knowledge graph
// (paper Section 6): a base KG receives a stream of ingestion batches of
// varying quality; after each batch the monitor re-establishes a 5% MoE
// estimate, reusing previous annotations.
//
// Both incremental methods run side by side through the campaign-level
// IncrementalCampaignDriver (the registry's "rs"/"ss" code path):
//   RS — weighted reservoir sampling (Algorithm 1): robust, stochastically
//        refreshes its sample;
//   SS — stratified incremental evaluation (Algorithm 2): cheapest, reuses
//        every annotation, one stratum per batch.
// A from-scratch baseline shows what not reusing anything would cost, and
// every campaign's per-round trajectory is captured through the telemetry
// sink and written as kg_monitor_trace.json (kgacc-trace-v1) — the feed a
// monitoring dashboard would consume.
//
// Run: ./build/examples/evolving_kg_monitor

#include <cstdio>
#include <sstream>
#include <vector>

#include "kgaccuracy.h"

namespace {

using namespace kgacc;

/// The evolving substrate: append-only cluster population plus a synthetic
/// label stream whose quality we control per batch.
struct EvolvingStore {
  ClusterPopulation population;
  PerClusterBernoulliOracle oracle{2027};
  double weighted_p = 0.0;

  std::pair<uint64_t, uint64_t> Ingest(uint64_t triples, double accuracy,
                                       Rng& rng) {
    const uint64_t first = population.NumClusters();
    std::vector<uint32_t> sizes =
        GenerateLogNormalSizes(std::max<uint64_t>(1, triples / 9), 0.94, 1.6,
                               5000, rng);
    ScaleSizesToTotal(&sizes, triples);
    for (uint32_t s : sizes) {
      population.Append(s);
      oracle.Append(accuracy);
      weighted_p += static_cast<double>(s) * accuracy;
    }
    return {first, population.NumClusters() - first};
  }

  double TrueAccuracy() const {
    return weighted_p / static_cast<double>(population.TotalTriples());
  }
};

}  // namespace

int main() {
  using namespace kgacc;
  const CostModel cost_model{.c1_seconds = 45.0, .c2_seconds = 25.0};
  Rng rng(314159);

  EvolvingStore store;
  store.Ingest(/*triples=*/500000, /*accuracy=*/0.92, rng);  // the base KG.

  EvaluationOptions options;
  options.seed = 11;
  TraceRecorder recorder;  // per-round trajectories of every campaign.
  options.telemetry = &recorder;

  SimulatedAnnotator rs_annotator(&store.oracle, cost_model);
  SimulatedAnnotator ss_annotator(&store.oracle, cost_model);
  IncrementalCampaignDriver rs(IncrementalMethod::kReservoir,
                               &store.population, &rs_annotator, options);
  IncrementalCampaignDriver ss(IncrementalMethod::kStratified,
                               &store.population, &ss_annotator, options);
  SnapshotBaselineEvaluator baseline(&store.oracle, cost_model, options);

  std::printf("initial evaluation of the base KG (500K triples)...\n");
  const EvaluationResult rs0 = rs.Initialize();
  const EvaluationResult ss0 = ss.Initialize();
  std::printf("  RS: %s (MoE %.1f%%), %s\n",
              FormatPercent(rs0.estimate.mean, 1).c_str(), rs0.moe * 100.0,
              FormatDuration(rs0.annotation_seconds).c_str());
  std::printf("  SS: %s (MoE %.1f%%), %s\n",
              FormatPercent(ss0.estimate.mean, 1).c_str(), ss0.moe * 100.0,
              FormatDuration(ss0.annotation_seconds).c_str());

  // A stream of ingestion batches; batch 4 is a bad crawl (40% accurate) —
  // the monitor must catch the drop.
  struct Batch {
    uint64_t triples;
    double accuracy;
    const char* note;
  };
  const std::vector<Batch> stream = {
      {50000, 0.93, "regular ingestion"},
      {60000, 0.90, "regular ingestion"},
      {80000, 0.91, "regular ingestion"},
      {120000, 0.40, "BAD CRAWL (label quality collapsed)"},
      {50000, 0.92, "regular ingestion"},
      {60000, 0.91, "regular ingestion"},
  };

  std::printf("\n%5s %11s %11s %11s | %11s %11s %12s\n", "batch", "truth",
              "RS est", "SS est", "RS cost", "SS cost", "scratch cost");
  std::printf("%s\n", std::string(92, '-').c_str());
  double rs_total = rs0.annotation_seconds, ss_total = ss0.annotation_seconds;
  double baseline_total = 0.0;
  for (size_t b = 0; b < stream.size(); ++b) {
    const auto [first, count] =
        store.Ingest(stream[b].triples, stream[b].accuracy, rng);
    const EvaluationResult r1 = rs.ApplyUpdate(first, count);
    const EvaluationResult r2 = ss.ApplyUpdate(first, count);
    const IncrementalUpdateReport r3 = baseline.Evaluate(store.population);
    rs_total += r1.annotation_seconds;
    ss_total += r2.annotation_seconds;
    baseline_total += r3.step_cost_seconds;
    std::printf("%5zu %10.1f%% %10.1f%% %10.1f%% | %11s %11s %12s   %s\n",
                b + 1, store.TrueAccuracy() * 100.0, r1.estimate.mean * 100.0,
                r2.estimate.mean * 100.0,
                FormatDuration(r1.annotation_seconds).c_str(),
                FormatDuration(r2.annotation_seconds).c_str(),
                FormatDuration(r3.step_cost_seconds).c_str(), stream[b].note);
  }

  std::printf("\ncumulative monitoring cost: RS %s | SS %s | from-scratch %s\n",
              FormatDuration(rs_total).c_str(), FormatDuration(ss_total).c_str(),
              FormatDuration(baseline_total).c_str());

  // The dashboard feed: every campaign above, one JSON document.
  if (const Status written =
          WriteTraceJson("kg_monitor_trace.json", recorder.campaigns());
      !written.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  std::printf("per-round trajectories: kg_monitor_trace.json "
              "(%zu campaigns)\n", recorder.campaigns().size());

  // --- Surviving a restart: persist the SS state and resume. ----------------
  // A real monitor checkpoints after every batch; here we round-trip through
  // a string and show the restored evaluator carries the exact estimate and
  // keeps serving updates without re-annotating anything.
  std::stringstream checkpoint;
  if (const Status saved = SaveStratifiedState(*ss.stratified(), checkpoint);
      !saved.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  SimulatedAnnotator resumed_annotator(&store.oracle, cost_model);
  // The trace file is already written; don't record the post-restart
  // campaigns into a recorder nobody flushes again.
  EvaluationOptions resumed_options = options;
  resumed_options.telemetry = nullptr;
  StratifiedIncrementalEvaluator resumed(&store.population, &resumed_annotator,
                                         resumed_options);
  if (const Status restored = RestoreStratifiedState(checkpoint, &resumed);
      !restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n", restored.ToString().c_str());
    return 1;
  }
  std::printf("\nafter restart: restored estimate %s (live evaluator: %s), "
              "checkpoint size %zu bytes\n",
              FormatPercent(resumed.CurrentEstimate().mean, 2).c_str(),
              FormatPercent(ss.CurrentEstimate().mean, 2).c_str(),
              checkpoint.str().size());
  const auto [first, count] = store.Ingest(40000, 0.9, rng);
  const IncrementalUpdateReport post = resumed.ApplyUpdate(first, count);
  std::printf("first post-restart batch: estimate %s, new cost %s "
              "(old annotations reused)\n",
              FormatPercent(post.estimate.mean, 1).c_str(),
              FormatDuration(post.step_cost_seconds).c_str());

  std::printf(
      "\nGuideline (paper Section 7.3): prefer SS when update history is "
      "tracked and batches are\nsubstantial; prefer RS when updates are "
      "small/frequent and robustness to a bad initial\nsample matters more "
      "than the last bit of cost.\n");
  return 0;
}
