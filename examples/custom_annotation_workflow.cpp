// End-to-end crowdsourcing round trip on a file-based knowledge graph:
//
//   1. load a TSV knowledge graph (subject \t predicate \t object);
//   2. draw a TWCS sample and export it as Evaluation Tasks — triples
//      grouped by subject, the unit a human annotator works on (Section 3);
//   3. "receive" the annotations (simulated here by a noisy annotator —
//      real crowds are imperfect, so we model a 3% label-flip rate);
//   4. feed labels to the estimator and report accuracy with its CI,
//      plus Wilson/empirical intervals for near-boundary accuracies.
//
// Run: ./build/examples/custom_annotation_workflow [graph.tsv]
// Without an argument a small built-in movie graph is used.

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "kgaccuracy.h"

namespace {

constexpr const char* kBuiltinGraph =
    "# a tiny slice of a movie KG: subject \\t predicate \\t object\n"
    "michael_jordan\twasBornIn\tbrooklyn\n"
    "michael_jordan\tbirthDate\t1963-02-17\n"
    "michael_jordan\tperformedIn\tspace_jam\n"
    "michael_jordan\tgraduatedFrom\tunc\n"
    "michael_jordan\thasChild\tmarcus_jordan\n"
    "space_jam\treleaseDate\t1996\n"
    "space_jam\tdirectedBy\tjoe_pytka\n"
    "space_jam\tduration\t88min\n"
    "vanessa_williams\tperformedIn\tsoul_food\n"
    "vanessa_williams\twasBornIn\tnew_york\n"
    "twilight\treleaseDate\t2008\n"
    "twilight\tdirectedBy\tcatherine_hardwicke\n"
    "friends\tdirectedBy\tlewis_gilbert\n"
    "friends\tduration\t1h6min\n"
    "the_walking_dead\tduration\t1h6min\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace kgacc;

  // --- 1. Load the graph. --------------------------------------------------
  SymbolTable symbols;
  KnowledgeGraph kg;
  Status status;
  if (argc > 1) {
    status = LoadTsvFile(argv[1], &symbols, &kg);
  } else {
    std::istringstream builtin(kBuiltinGraph);
    status = LoadTsv(builtin, &symbols, &kg);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "failed to load graph: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("loaded %llu triples over %llu entities\n",
              static_cast<unsigned long long>(kg.TotalTriples()),
              static_cast<unsigned long long>(kg.NumClusters()));

  // --- 2. Draw a TWCS sample and export evaluation tasks. ------------------
  Rng rng(2025);
  TwcsSampler sampler(kg, /*m=*/3);
  std::vector<TripleRef> sample;
  for (const ClusterDraw& draw :
       sampler.NextBatch(std::min<uint64_t>(kg.NumClusters(), 8), rng)) {
    for (uint64_t offset : draw.offsets) {
      sample.push_back(TripleRef{draw.cluster, offset});
    }
  }
  const std::vector<EvaluationTask> tasks = GroupBySubject(sample);

  std::printf("\nexported evaluation tasks (what an annotator receives):\n");
  for (const EvaluationTask& task : tasks) {
    const EntityCluster& cluster = kg.Cluster(task.cluster);
    std::printf("  Task: identify entity '%s', then validate:\n",
                symbols.Name(cluster.subject).c_str());
    // With-replacement draws can repeat an offset; show each triple once
    // (the annotator labels it once — re-draws reuse the cached label).
    std::vector<uint64_t> unique_offsets = task.offsets;
    std::sort(unique_offsets.begin(), unique_offsets.end());
    unique_offsets.erase(
        std::unique(unique_offsets.begin(), unique_offsets.end()),
        unique_offsets.end());
    for (uint64_t offset : unique_offsets) {
      const Triple& t = kg.At(TripleRef{task.cluster, offset});
      std::printf("    (%s, %s, %s)\n", symbols.Name(t.subject).c_str(),
                  symbols.Name(t.predicate).c_str(),
                  symbols.Name(t.object.id).c_str());
    }
  }

  // --- 3. Annotation round (simulated noisy crowd). ------------------------
  // Ground truth for the demo: ~85% of facts are correct, decided per triple.
  const PerClusterBernoulliOracle truth =
      MakeRandomErrorOracle(kg.NumClusters(), 0.85, /*seed=*/5);
  const CostModel cost_model{.c1_seconds = 45.0, .c2_seconds = 25.0};
  SimulatedAnnotator crowd(&truth, cost_model,
                           {.noise_rate = 0.03, .seed = 77});

  TwcsEstimator estimator;
  for (const EvaluationTask& task : tasks) {
    const std::vector<uint8_t> labels = crowd.AnnotateTask(task);
    uint64_t correct = 0;
    for (uint8_t l : labels) correct += l;
    estimator.AddDraw(correct, labels.size());
  }

  // --- 4. Report. -----------------------------------------------------------
  const Estimate estimate = estimator.Current();
  std::printf("\nestimate after %llu tasks: %s (normal 95%% CI [%s, %s])\n",
              static_cast<unsigned long long>(tasks.size()),
              FormatPercent(estimate.mean, 1).c_str(),
              FormatPercent(estimate.CiLower(0.05), 1).c_str(),
              FormatPercent(estimate.CiUpper(0.05), 1).c_str());

  // For accuracies near 100% the Wald interval degenerates; Wilson behaves.
  const ConfidenceInterval wilson = WilsonInterval(
      static_cast<uint64_t>(estimate.mean * static_cast<double>(sample.size())),
      sample.size(), 0.05);
  std::printf("Wilson interval on the pooled triples: [%s, %s]\n",
              FormatPercent(wilson.lower, 1).c_str(),
              FormatPercent(wilson.upper, 1).c_str());

  std::printf("annotation bill: %llu entities, %llu triples -> %s\n",
              static_cast<unsigned long long>(crowd.ledger().entities_identified),
              static_cast<unsigned long long>(crowd.ledger().triples_annotated),
              FormatDuration(crowd.ElapsedSeconds()).c_str());
  return 0;
}
