// Auditing a production-scale knowledge graph: the MOVIE scenario from the
// paper's introduction (IMDb + WikiData, 2.65M triples over 289K entities).
//
// The audit demonstrates the workflow a data-quality team would follow:
//   1. run a small pilot to choose the cost-optimal second-stage size m;
//   2. compare what SRS would have cost against TWCS;
//   3. tighten the target and re-audit with size-stratified TWCS.
//
// Run: ./build/examples/movie_accuracy_audit

#include <cstdio>

#include "kgaccuracy.h"

int main() {
  using namespace kgacc;
  const CostModel cost_model{.c1_seconds = 45.0, .c2_seconds = 25.0};

  std::printf("Building the MOVIE graph (2.65M triples, 289K entities)...\n");
  const Dataset movie = MakeMovie(/*seed=*/2026);

  // --- Step 1: pilot for the optimal second-stage size m (Eq 12). ---------
  SimulatedAnnotator annotator(movie.oracle.get(), cost_model);
  const Result<OptimalMResult> pilot =
      PilotOptimalM(movie.View(), &annotator, /*alpha=*/0.05, /*epsilon=*/0.05,
                    /*pilot_clusters=*/20, /*m_max=*/10, /*seed=*/1);
  if (!pilot.ok()) {
    std::fprintf(stderr, "pilot failed: %s\n", pilot.status().ToString().c_str());
    return 1;
  }
  std::printf("pilot (%llu triples annotated, %s): optimal m = %llu\n",
              static_cast<unsigned long long>(
                  annotator.ledger().triples_annotated),
              FormatDuration(annotator.ElapsedSeconds()).c_str(),
              static_cast<unsigned long long>(pilot->best_m));

  // --- Step 2: the audit, TWCS vs what SRS would have cost. ---------------
  EvaluationOptions options;
  options.m = pilot->best_m;
  options.seed = 99;

  // The pilot's annotations stay cached: TWCS reuses any triple it re-draws.
  StaticEvaluator evaluator(movie.View(), &annotator, options);
  const EvaluationResult twcs = evaluator.EvaluateTwcs();

  SimulatedAnnotator srs_annotator(movie.oracle.get(), cost_model);
  StaticEvaluator srs_evaluator(movie.View(), &srs_annotator, options);
  const EvaluationResult srs = srs_evaluator.EvaluateSrs();

  std::printf("\n%-10s %26s %14s %12s\n", "design", "estimate [95% CI]",
              "entities/triples", "time");
  for (const EvaluationResult* r : {&twcs, &srs}) {
    std::printf("%-10s %10s [%s, %s] %7llu/%-7llu %12s\n", r->design.c_str(),
                FormatPercent(r->estimate.mean, 1).c_str(),
                FormatPercent(r->estimate.CiLower(0.05), 1).c_str(),
                FormatPercent(r->estimate.CiUpper(0.05), 1).c_str(),
                static_cast<unsigned long long>(r->ledger.entities_identified),
                static_cast<unsigned long long>(r->ledger.triples_annotated),
                FormatDuration(r->annotation_seconds).c_str());
  }
  std::printf("TWCS saved %.0f%% of the annotation bill.\n",
              (1.0 - twcs.annotation_seconds / srs.annotation_seconds) * 100.0);

  // --- Step 3: a tighter re-audit with size stratification. ----------------
  // Cluster size is a useful accuracy signal (paper Fig 3); cum-sqrt(F)
  // strata + Neyman allocation cut the variance further.
  std::printf("\nRe-auditing at MoE 3%% with 4 size strata...\n");
  EvaluationOptions tight = options;
  tight.moe_target = 0.03;
  SimulatedAnnotator strat_annotator(movie.oracle.get(), cost_model);
  StratifiedTwcsEvaluator stratified(movie.View(), &strat_annotator, tight);
  const Strata strata = StratifiedTwcsEvaluator::SizeStrata(movie.View(), 4);
  const EvaluationResult strat = stratified.Evaluate(strata);

  std::printf("stratified TWCS: %s [%s, %s], %s, %llu strata draws\n",
              FormatPercent(strat.estimate.mean, 1).c_str(),
              FormatPercent(strat.estimate.CiLower(0.05), 1).c_str(),
              FormatPercent(strat.estimate.CiUpper(0.05), 1).c_str(),
              FormatDuration(strat.annotation_seconds).c_str(),
              static_cast<unsigned long long>(strat.estimate.num_units));

  const double truth = RealizedOverallAccuracy(*movie.oracle, movie.View());
  std::printf("(ground truth: %s)\n", FormatPercent(truth, 1).c_str());
  return 0;
}
