// Machine-time microbenchmarks for the EvaluationEngine's annotation hot
// path: per-triple Annotate vs the batched AnnotateBatch fast path vs the
// sharded thread-pooled path, on the synthetic-oracle workload, plus a
// whole-campaign benchmark through the DesignRegistry.
//
// The batched path must be at least as fast as the per-triple path (it does
// strictly less hashing per triple); the sharded path pays thread hand-off
// and only wins with spare cores and large batches.
//
// BM_AnnotateBatchSweep is the crowd-scale sweep (batch size × thread
// count): it measures pure AnnotateBatch throughput with manual timing (the
// per-iteration cache Reset is excluded) and, when any sweep configuration
// ran, writes a `kgacc-annotate-bench-v1` JSON artifact
// (BENCH_annotate_sweep.json, into $KGACC_BENCH_JSON_DIR when set) with
// items/sec and the speedup of every thread count against the same batch's
// single-thread run. `kgacc_trace_check` validates the artifact; CI's
// bench-smoke job uploads it.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/design_registry.h"
#include "core/telemetry.h"
#include "kg/cluster_population.h"
#include "kg/generator.h"
#include "labels/annotator.h"
#include "labels/synthetic_oracle.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/timer.h"

namespace kgacc {
namespace {

constexpr CostModel kCost{.c1_seconds = 45.0, .c2_seconds = 25.0};

struct Workload {
  ClusterPopulation population;
  PerClusterBernoulliOracle oracle{0x5eed};
  std::vector<TripleRef> refs;
};

/// A size-weighted stream of triple refs over a log-normal population — the
/// shape of an engine campaign's annotation requests (with some repeats, as
/// with-replacement designs produce).
Workload MakeWorkload(uint64_t num_refs) {
  Rng rng(1234);
  Workload out;
  std::vector<uint32_t> sizes =
      GenerateLogNormalSizes(200000, 1.55, 1.1, 5000, rng);
  for (size_t i = 0; i < sizes.size(); ++i) out.oracle.Append(0.9);
  out.population = ClusterPopulation(std::move(sizes));
  out.refs.reserve(num_refs);
  for (uint64_t i = 0; i < num_refs; ++i) {
    const uint64_t cluster = rng.UniformIndex(out.population.NumClusters());
    const uint64_t offset =
        rng.UniformIndex(out.population.ClusterSize(cluster));
    out.refs.push_back(TripleRef{cluster, offset});
  }
  return out;
}

void BM_AnnotatePerTriple(benchmark::State& state) {
  const Workload workload = MakeWorkload(state.range(0));
  SimulatedAnnotator annotator(&workload.oracle, kCost);
  std::vector<uint8_t> labels(workload.refs.size());
  for (auto _ : state) {
    annotator.Reset();
    for (size_t i = 0; i < workload.refs.size(); ++i) {
      labels[i] = annotator.Annotate(workload.refs[i]) ? 1 : 0;
    }
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnnotatePerTriple)->Arg(4096)->Arg(65536)->Arg(262144);

void BM_AnnotateBatch(benchmark::State& state) {
  const Workload workload = MakeWorkload(state.range(0));
  SimulatedAnnotator annotator(&workload.oracle, kCost);
  std::vector<uint8_t> labels(workload.refs.size());
  for (auto _ : state) {
    annotator.Reset();
    annotator.AnnotateBatch(std::span<const TripleRef>(workload.refs),
                            labels.data());
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnnotateBatch)->Arg(4096)->Arg(65536)->Arg(262144);

void BM_AnnotateBatchSharded(benchmark::State& state) {
  const Workload workload = MakeWorkload(state.range(0));
  SimulatedAnnotator annotator(
      &workload.oracle, kCost,
      {.annotation_threads = static_cast<int>(state.range(1))});
  std::vector<uint8_t> labels(workload.refs.size());
  for (auto _ : state) {
    annotator.Reset();
    annotator.AnnotateBatch(std::span<const TripleRef>(workload.refs),
                            labels.data());
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnnotateBatchSharded)
    ->Args({65536, 2})
    ->Args({65536, 4})
    ->Args({262144, 4});

/// One sweep cell's measured throughput, keyed by (batch, threads).
std::map<std::pair<int64_t, int64_t>, double>& SweepRates() {
  static auto* rates = new std::map<std::pair<int64_t, int64_t>, double>();
  return *rates;
}

void BM_AnnotateBatchSweep(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const int64_t threads = state.range(1);
  const Workload workload = MakeWorkload(batch);
  SimulatedAnnotator annotator(
      &workload.oracle, kCost,
      {.annotation_threads = static_cast<int>(threads)});
  std::vector<uint8_t> labels(workload.refs.size());
  double annotate_seconds = 0.0;
  uint64_t items = 0;
  for (auto _ : state) {
    annotator.Reset();
    WallTimer timer;
    annotator.AnnotateBatch(std::span<const TripleRef>(workload.refs),
                            labels.data());
    const double elapsed = timer.ElapsedSeconds();
    state.SetIterationTime(elapsed);
    annotate_seconds += elapsed;
    items += workload.refs.size();
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(items));
  if (annotate_seconds > 0.0) {
    SweepRates()[{batch, threads}] =
        static_cast<double>(items) / annotate_seconds;
  }
}
BENCHMARK(BM_AnnotateBatchSweep)
    ->ArgsProduct({{16384, 100000, 262144}, {1, 2, 4, 8}})
    ->UseManualTime();

}  // namespace

/// Writes the kgacc-annotate-bench-v1 artifact from the sweep cells that
/// ran (a --benchmark_filter selecting none of them writes nothing).
void WriteSweepArtifact() {
  const auto& rates = SweepRates();
  if (rates.empty()) return;
  const std::string path =
      bench::ArtifactPath("BENCH_annotate_sweep.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"kgacc-annotate-bench-v1\",\n");
  std::fprintf(f, "  \"sweep\": [\n");
  bool first = true;
  for (const auto& [key, rate] : rates) {
    const auto& [batch, threads] = key;
    const auto single = rates.find({batch, int64_t{1}});
    const double speedup =
        single != rates.end() && single->second > 0.0 ? rate / single->second
                                                      : 0.0;
    std::fprintf(f,
                 "%s    {\"batch\": %lld, \"threads\": %lld, "
                 "\"items_per_second\": %.17g, \"speedup_vs_1\": %.17g}",
                 first ? "" : ",\n", static_cast<long long>(batch),
                 static_cast<long long>(threads), rate, speedup);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("sweep artifact: %s (%zu configurations)\n", path.c_str(),
              rates.size());
}

namespace {

/// Fastest observed per-campaign time with metrics collection off/on; the
/// minimum is robust against scheduler noise on shared runners.
struct OverheadCells {
  double baseline_seconds = 0.0;
  double metrics_seconds = 0.0;
};

OverheadCells& Overhead() {
  static auto* cells = new OverheadCells();
  return *cells;
}

void BM_EngineCampaign(benchmark::State& state) {
  // One full TWCS campaign per iteration, end to end through the registry.
  // Metrics collection is off (the process default), so this is also the
  // baseline of the instrumentation-overhead artifact: the same binary, the
  // same sites, just the disabled branch of each one.
  const Workload workload = MakeWorkload(1);
  EvaluationOptions options;
  options.seed = 7;
  uint64_t triples = 0;
  double best = 0.0;
  for (auto _ : state) {
    SimulatedAnnotator annotator(&workload.oracle, kCost);
    WallTimer timer;
    const Result<EvaluationResult> run = DesignRegistry::Global().Run(
        "twcs", workload.population, &annotator, options);
    const double elapsed = timer.ElapsedSeconds();
    if (best == 0.0 || elapsed < best) best = elapsed;
    benchmark::DoNotOptimize(run);
    triples += run->ledger.triples_annotated;
  }
  state.SetItemsProcessed(static_cast<int64_t>(triples));
  if (best > 0.0) Overhead().baseline_seconds = best;
}
BENCHMARK(BM_EngineCampaign);

void BM_EngineCampaignMetrics(benchmark::State& state) {
  // The identical campaign with metrics collection enabled: every phase
  // span records to its histogram and every counter site accumulates. The
  // delta to BM_EngineCampaign is the live instrumentation overhead, which
  // the kgacc-metrics-bench-v1 artifact reports and CI budgets.
  const Workload workload = MakeWorkload(1);
  EvaluationOptions options;
  options.seed = 7;
  uint64_t triples = 0;
  double best = 0.0;
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Global().ResetValues();
  for (auto _ : state) {
    SimulatedAnnotator annotator(&workload.oracle, kCost);
    WallTimer timer;
    const Result<EvaluationResult> run = DesignRegistry::Global().Run(
        "twcs", workload.population, &annotator, options);
    const double elapsed = timer.ElapsedSeconds();
    if (best == 0.0 || elapsed < best) best = elapsed;
    benchmark::DoNotOptimize(run);
    triples += run->ledger.triples_annotated;
  }
  obs::EnableMetrics(false);
  state.SetItemsProcessed(static_cast<int64_t>(triples));
  if (best > 0.0) Overhead().metrics_seconds = best;
}
BENCHMARK(BM_EngineCampaignMetrics);

void BM_EngineCampaignTraced(benchmark::State& state) {
  // The same campaign with a per-round TraceRecorder attached: the delta to
  // BM_EngineCampaign is the full telemetry overhead (should be noise — one
  // struct append per round, no extra sampling or hashing).
  const Workload workload = MakeWorkload(1);
  uint64_t triples = 0;
  for (auto _ : state) {
    TraceRecorder recorder;
    EvaluationOptions options;
    options.seed = 7;
    options.telemetry = &recorder;
    SimulatedAnnotator annotator(&workload.oracle, kCost);
    const Result<EvaluationResult> run = DesignRegistry::Global().Run(
        "twcs", workload.population, &annotator, options);
    benchmark::DoNotOptimize(run);
    benchmark::DoNotOptimize(recorder.campaigns().size());
    triples += run->ledger.triples_annotated;
  }
  state.SetItemsProcessed(static_cast<int64_t>(triples));
}
BENCHMARK(BM_EngineCampaignTraced);

}  // namespace

/// Writes the kgacc-metrics-bench-v1 instrumentation-overhead artifact when
/// both BM_EngineCampaign and BM_EngineCampaignMetrics ran (a filter
/// selecting only one of them writes nothing). kgacc_trace_check gates
/// `overhead_fraction` with --max-metrics-overhead.
void WriteMetricsOverheadArtifact() {
  const OverheadCells& cells = Overhead();
  if (cells.baseline_seconds <= 0.0 || cells.metrics_seconds <= 0.0) return;
  const double overhead =
      cells.metrics_seconds / cells.baseline_seconds - 1.0;
  const std::string path =
      bench::ArtifactPath("BENCH_metrics_overhead.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"schema\": \"kgacc-metrics-bench-v1\",\n"
               "  \"baseline_seconds\": %.17g,\n"
               "  \"metrics_seconds\": %.17g,\n"
               "  \"overhead_fraction\": %.17g\n}\n",
               cells.baseline_seconds, cells.metrics_seconds, overhead);
  std::fclose(f);
  std::printf("metrics overhead artifact: %s (%.2f%%)\n", path.c_str(),
              overhead * 100.0);
}

}  // namespace kgacc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  kgacc::WriteSweepArtifact();
  kgacc::WriteMetricsOverheadArtifact();
  return 0;
}
