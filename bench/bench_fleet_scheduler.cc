// bench_fleet_scheduler — multi-tenant campaign scheduler under a shared
// annotation budget (the fleet-level analogue of the paper's cost/quality
// experiments: Eq 4 cost per round, CI width as quality).
//
// Runs the same tenant fleet under each scheduling policy at the same
// budget, then compares fleet mean/max CI width and Jain's fairness index
// over per-tenant spend. The fleet mixes designs, MoE targets and — key for
// the greedy-ci policy — co-tenant campaigns that share a graph, design and
// sampling seed, whose rounds are free after the first tenant bought the
// labels (cross-campaign reuse).
//
// Emits a kgacc-fleet-bench-v1 artifact (BENCH_fleet_scheduler.json) that
// `kgacc_trace_check --max-fleet-ci-width/--min-fleet-fairness` gates, plus
// one fleet_grants_<policy>.log per policy: the GrantRecord::ToLine rendering
// of the grant sequence, byte-identical across runs with the same flags
// (CI's fleet-smoke job compares two runs to pin scheduler determinism).
//
// Flags: --tenants N (8), --graphs G (2), --budget SECONDS (40000),
// --max-resident K (0 = unlimited), --policies a,b,c (all three),
// --seed S (KGACC_SEED fallback), --out PATH.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datasets/datasets.h"
#include "kg/cluster_population.h"
#include "labels/synthetic_oracle.h"
#include "serve/graph_store.h"
#include "serve/scheduler.h"
#include "serve/tenant.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace kgacc::serve {
namespace {

constexpr const char* kUsage = R"(bench_fleet_scheduler — fleet scheduling bench

Runs one tenant fleet under each scheduling policy at the same annotation
budget and writes a kgacc-fleet-bench-v1 artifact plus per-policy grant logs.

Flags:
  --tenants N       fleet size                                       [8]
  --graphs G        shared graphs (tenant i evaluates graph i mod G) [2]
  --budget SECONDS  fleet annotation budget per policy run           [40000]
  --max-resident K  residency cap (exercises evict/resume; 0 = off)  [0]
  --policies CSV    subset of greedy-ci,round-robin,weighted-fair    [all]
  --seed S          base seed (env KGACC_SEED is the fallback)
  --out PATH        artifact path [$KGACC_BENCH_JSON_DIR/BENCH_fleet_scheduler.json]
  --help            this message
)";

/// A synthetic population graph for the fleet: long-tail cluster sizes with
/// per-cluster Bernoulli accuracies (the Random-Error/BMM shape every
/// estimator consumes — only sizes and 0/1 labels matter).
std::shared_ptr<const Dataset> MakeFleetGraph(const std::string& name,
                                              uint64_t num_clusters,
                                              uint32_t max_size,
                                              double accuracy, double spread,
                                              uint64_t seed) {
  Rng rng(seed);
  auto population = std::make_unique<ClusterPopulation>();
  auto oracle =
      std::make_unique<PerClusterBernoulliOracle>(HashCombine(seed, 0x7e57));
  for (uint64_t i = 0; i < num_clusters; ++i) {
    const uint32_t size =
        1 + static_cast<uint32_t>(rng.UniformIndex(max_size));
    double p = accuracy + spread * (rng.UniformDouble() - 0.5) * 2.0;
    p = std::clamp(p, 0.0, 1.0);
    population->Append(size);
    oracle->Append(p);
  }
  auto dataset = std::make_shared<Dataset>();
  dataset->name = name;
  dataset->population = std::move(population);
  dataset->bernoulli = oracle.get();
  dataset->oracle = std::move(oracle);
  return dataset;
}

/// The fleet script: tenant i evaluates graph (i mod G). The first two
/// tenants of every graph are identical campaigns (same design, options and
/// sampling seed) — the second one's labels are all cross-campaign reuse, so
/// its rounds charge ~0 against the budget. Later tenants alternate cheap
/// (small-batch) and expensive (large-batch) rounds and vary design and MoE
/// target — the cost/width heterogeneity the greedy-ci policy exploits and
/// round-robin ignores.
TenantConfig MakeTenantConfig(uint64_t index, uint64_t num_graphs,
                              uint64_t seed) {
  static const char* kDesigns[] = {"twcs", "srs", "wcs"};
  static const double kMoe[] = {0.03, 0.04, 0.05, 0.06};
  const uint64_t graph = index % num_graphs;
  const uint64_t slot = index / num_graphs;  // position within its graph.
  TenantConfig config;
  config.id = StrFormat("t%02llu", static_cast<unsigned long long>(index));
  config.graph = StrFormat("fleet-g%llu",
                           static_cast<unsigned long long>(graph));
  if (slot < 2) {
    // Reuse pair: slot 0 pays, slot 1 rides free.
    config.design = "twcs";
    config.options.moe_target = 0.03;
    config.options.seed = HashCombine(seed, 1000 + graph);
  } else {
    config.design = kDesigns[slot % 3];
    config.options.moe_target = kMoe[slot % 4];
    config.options.batch_units = (slot % 2 == 0) ? 5 : 20;
    config.options.seed = HashCombine(seed, 2000 + index);
  }
  config.options.max_units = 20000;
  config.annotator.seed = HashCombine(seed, 3000 + index);
  return config;
}

struct PolicyOutcome {
  std::string policy;
  uint64_t grants = 0;
  double spent_seconds = 0.0;
  double mean_ci_width = 0.0;
  double max_ci_width = 0.0;
  double budget_avg_ci_width = 1.0;
  double jain_fairness = 1.0;
  std::vector<TenantStatus> tenants;
  std::vector<GrantRecord> grant_log;
};

/// Fleet mean CI width averaged over the budget actually spent: after each
/// grant, the fleet mean width (never-granted tenants count as 1.0) is
/// weighted by that grant's charge. Integrating the whole spend trajectory
/// makes this the stable convergence-speed metric — a policy that buys its
/// width reductions early and cheaply scores lower — where the final-width
/// snapshot is one noisy draw.
double BudgetAveragedWidth(const std::vector<GrantRecord>& grant_log,
                           uint64_t num_tenants) {
  std::map<std::string, double> width;
  double area = 0.0;
  double total = 0.0;
  for (const GrantRecord& record : grant_log) {
    width[record.tenant] = record.ci_width;
    double sum = 0.0;
    for (const auto& [id, w] : width) sum += w;
    sum += static_cast<double>(num_tenants - width.size());  // unseen = 1.0.
    const double fleet_mean = sum / static_cast<double>(num_tenants);
    area += fleet_mean * record.charged_seconds;
    total += record.charged_seconds;
  }
  return total > 0.0 ? area / total : 1.0;
}

double JainIndex(const std::vector<TenantStatus>& tenants) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const TenantStatus& t : tenants) {
    sum += t.spent_seconds;
    sum_sq += t.spent_seconds * t.spent_seconds;
  }
  if (sum_sq <= 0.0) return 1.0;  // nobody charged: perfectly fair.
  return (sum * sum) / (static_cast<double>(tenants.size()) * sum_sq);
}

PolicyOutcome RunPolicy(CampaignScheduler::Policy policy, GraphStore* graphs,
                        uint64_t num_tenants, uint64_t num_graphs,
                        double budget, uint64_t max_resident, uint64_t seed) {
  CampaignScheduler::Options options;
  options.policy = policy;
  options.budget_seconds = budget;
  options.max_resident_sessions = max_resident;
  CampaignScheduler scheduler(graphs, options);
  for (uint64_t i = 0; i < num_tenants; ++i) {
    Result<std::string> added =
        scheduler.AddTenant(MakeTenantConfig(i, num_graphs, seed));
    if (!added.ok()) {
      std::fprintf(stderr, "error: add tenant %llu: %s\n",
                   static_cast<unsigned long long>(i),
                   added.status().message().c_str());
      std::exit(1);
    }
  }
  // Drive on this thread (no background loop): the grant sequence is then a
  // pure function of (policy, seed, arrival script) — the determinism the
  // grant-log byte-compare pins.
  scheduler.RunUntilIdle();

  PolicyOutcome out;
  out.policy = CampaignScheduler::PolicyName(policy);
  out.spent_seconds = scheduler.SpentSeconds();
  out.tenants = scheduler.Statuses();
  out.grant_log = scheduler.GrantLog();
  out.grants = out.grant_log.size();
  double sum_width = 0.0;
  for (const TenantStatus& t : out.tenants) {
    sum_width += t.ci_width;
    out.max_ci_width = std::max(out.max_ci_width, t.ci_width);
  }
  out.mean_ci_width =
      out.tenants.empty() ? 0.0
                          : sum_width / static_cast<double>(out.tenants.size());
  out.budget_avg_ci_width = BudgetAveragedWidth(out.grant_log, num_tenants);
  out.jain_fairness = JainIndex(out.tenants);
  return out;
}

void WriteGrantLog(const PolicyOutcome& outcome) {
  const std::string path = kgacc::bench::ArtifactPath(
      StrFormat("fleet_grants_%s.log", outcome.policy.c_str()));
  std::ofstream out(path, std::ios::trunc);
  for (const GrantRecord& record : outcome.grant_log) {
    out << record.ToLine() << "\n";
  }
  std::printf("wrote %s (%zu grants)\n", path.c_str(),
              outcome.grant_log.size());
}

void WriteArtifact(const std::string& path,
                   const std::vector<PolicyOutcome>& outcomes,
                   uint64_t num_tenants, uint64_t num_graphs, double budget,
                   uint64_t seed) {
  JsonWriter json;
  json.BeginObject();
  json.Key("schema").String("kgacc-fleet-bench-v1");
  json.Key("seed").Uint(seed);
  json.Key("num_tenants").Uint(num_tenants);
  json.Key("num_graphs").Uint(num_graphs);
  json.Key("budget_seconds").Number(budget);
  json.Key("rows").BeginArray();
  for (const PolicyOutcome& outcome : outcomes) {
    // Per-tenant CI-width trajectory vs own cumulative charged seconds,
    // reconstructed from the grant log (tools/plot_fleet.py renders these).
    std::map<std::string, std::vector<std::pair<double, double>>> trajectories;
    std::map<std::string, double> charged;
    for (const GrantRecord& record : outcome.grant_log) {
      charged[record.tenant] += record.charged_seconds;
      trajectories[record.tenant].emplace_back(charged[record.tenant],
                                               record.ci_width);
    }
    json.BeginObject();
    json.Key("policy").String(outcome.policy);
    json.Key("grants").Uint(outcome.grants);
    json.Key("spent_seconds").Number(outcome.spent_seconds);
    json.Key("budget_seconds").Number(budget);
    json.Key("mean_ci_width").Number(outcome.mean_ci_width);
    json.Key("max_ci_width").Number(outcome.max_ci_width);
    json.Key("budget_avg_ci_width").Number(outcome.budget_avg_ci_width);
    json.Key("jain_fairness").Number(outcome.jain_fairness);
    json.Key("tenants").BeginArray();
    for (const TenantStatus& t : outcome.tenants) {
      json.BeginObject();
      json.Key("tenant").String(t.id);
      json.Key("graph").String(t.graph);
      json.Key("design").String(t.design);
      json.Key("state").String(TenantStateName(t.state));
      json.Key("spent_seconds").Number(t.spent_seconds);
      json.Key("cost_share")
          .Number(outcome.spent_seconds > 0.0
                      ? t.spent_seconds / outcome.spent_seconds
                      : 0.0);
      json.Key("rounds").Uint(t.rounds);
      json.Key("grants").Uint(t.grants);
      json.Key("ci_width").Number(t.ci_width);
      json.Key("converged").Bool(t.converged);
      json.Key("trajectory").BeginArray();
      for (const auto& [spent, width] : trajectories[t.id]) {
        json.BeginArray().Number(spent).Number(width).EndArray();
      }
      json.EndArray();
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::ofstream out(path, std::ios::trunc);
  out << json.TakeString() << "\n";
  std::printf("wrote %s\n", path.c_str());
}

int Main(int argc, char** argv) {
  Result<FlagParser> flags_or = FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n", flags_or.status().message().c_str());
    return 2;
  }
  const FlagParser& flags = std::move(flags_or).value();
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const Status valid = flags.Validate({"tenants", "graphs", "budget",
                                       "max-resident", "policies", "seed",
                                       "out", "help"});
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n%s", valid.message().c_str(), kUsage);
    return 2;
  }
  const uint64_t num_tenants =
      std::max<uint64_t>(flags.GetUint64("tenants", 8).value(), 1);
  const uint64_t num_graphs = std::clamp<uint64_t>(
      flags.GetUint64("graphs", 2).value(), 1, num_tenants);
  const double budget = flags.GetDouble("budget", 40000.0).value();
  const uint64_t max_resident = flags.GetUint64("max-resident", 0).value();
  const std::string policies_csv =
      flags.GetString("policies", "greedy-ci,round-robin,weighted-fair");
  const uint64_t seed = flags.Has("seed")
                            ? flags.GetUint64("seed", 0).value()
                            : kgacc::bench::Seed();
  const std::string out_path = flags.GetString(
      "out", kgacc::bench::ArtifactPath("BENCH_fleet_scheduler.json"));
  if (budget <= 0.0) {
    std::fprintf(stderr, "error: --budget must be > 0\n");
    return 2;
  }

  std::vector<CampaignScheduler::Policy> policies;
  for (const std::string_view name : SplitString(policies_csv, ',')) {
    const std::string trimmed(StripWhitespace(name));
    if (trimmed.empty()) continue;
    Result<CampaignScheduler::Policy> policy =
        CampaignScheduler::ParsePolicy(trimmed);
    if (!policy.ok()) {
      std::fprintf(stderr, "error: %s\n", policy.status().message().c_str());
      return 2;
    }
    policies.push_back(*policy);
  }
  if (policies.empty()) {
    std::fprintf(stderr, "error: --policies selected nothing\n");
    return 2;
  }

  kgacc::bench::Banner(StrFormat(
      "Fleet scheduler: %llu tenants / %llu graphs / budget %.0fs",
      static_cast<unsigned long long>(num_tenants),
      static_cast<unsigned long long>(num_graphs), budget));

  // Every policy run sees the same graphs (datasets are immutable).
  GraphStore graphs;
  for (uint64_t g = 0; g < num_graphs; ++g) {
    const std::string name =
        StrFormat("fleet-g%llu", static_cast<unsigned long long>(g));
    graphs.Put(name, MakeFleetGraph(name, 2000, 12, 0.85, 0.2,
                                    HashCombine(seed, 100 + g)));
  }

  std::vector<PolicyOutcome> outcomes;
  std::printf("%-13s %7s %12s %12s %12s %12s %8s\n", "policy", "grants",
              "spent (s)", "mean CI", "max CI", "avg CI", "Jain");
  kgacc::bench::Rule();
  for (const CampaignScheduler::Policy policy : policies) {
    PolicyOutcome outcome = RunPolicy(policy, &graphs, num_tenants,
                                      num_graphs, budget, max_resident, seed);
    std::printf("%-13s %7llu %12.0f %12.4f %12.4f %12.4f %8.4f\n",
                outcome.policy.c_str(),
                static_cast<unsigned long long>(outcome.grants),
                outcome.spent_seconds, outcome.mean_ci_width,
                outcome.max_ci_width, outcome.budget_avg_ci_width,
                outcome.jain_fairness);
    WriteGrantLog(outcome);
    outcomes.push_back(std::move(outcome));
  }
  WriteArtifact(out_path, outcomes, num_tenants, num_graphs, budget, seed);
  return 0;
}

}  // namespace
}  // namespace kgacc::serve

int main(int argc, char** argv) { return kgacc::serve::Main(argc, argv); }
