// Reproduces Table 5: performance comparison of SRS / RCS / WCS / TWCS on
// MOVIE, NELL and YAGO (annotation hours + estimation, MoE 5% @ 95%).
//
// Paper values (hours):
//   MOVIE: SRS 3.53, RCS >5 (stopped), WCS >5 (stopped), TWCS 1.4
//   NELL:  SRS 2.3±0.45, RCS 8.25±2.55, WCS 1.92±0.62, TWCS 1.85±0.6
//   YAGO:  SRS 0.45±0.17, RCS 10±0.56, WCS 0.49±0.04, TWCS 0.44±0.07
// As in the paper, RCS/WCS runs are cut off at 5 hours of annotation budget
// on MOVIE (footnote: their estimates then miss the MoE target).

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "core/static_evaluator.h"
#include "datasets/registry.h"
#include "labels/annotator.h"

namespace kgacc {
namespace {

struct DesignRow {
  RunningStats hours;
  RunningStats estimate;
  int not_converged = 0;
};

void RunDataset(const char* name, const Dataset& dataset, int trials,
                uint64_t seed, double budget_hours) {
  const CostModel cost{.c1_seconds = 45.0, .c2_seconds = 25.0};
  const ClusterPopulationStats stats =
      BuildPopulationStats(dataset.View(), *dataset.oracle);

  DesignRow rows[4];
  const char* designs[4] = {"SRS", "RCS", "WCS", "TWCS"};
  for (int t = 0; t < trials; ++t) {
    for (int d = 0; d < 4; ++d) {
      EvaluationOptions options;
    // The paper's reported runs stop at ~18-24 first-stage units
    // (Tables 4/6); match that floor instead of the conservative 30.
    options.min_units = 15;
      options.seed = seed + 17 * t + d;
      // The paper stops RCS/WCS at 5 hours on MOVIE for economic reasons.
      if (d == 1 || d == 2) options.max_cost_seconds = budget_hours * 3600.0;
      SimulatedAnnotator annotator(dataset.oracle.get(), cost);
      StaticEvaluator evaluator(dataset.View(), &annotator, options);
      evaluator.SetPopulationStatsForAutoM(&stats);
      EvaluationResult r;
      switch (d) {
        case 0: r = evaluator.EvaluateSrs(); break;
        case 1: r = evaluator.EvaluateRcs(); break;
        case 2: r = evaluator.EvaluateWcs(); break;
        case 3: r = evaluator.EvaluateTwcs(); break;
      }
      rows[d].hours.Add(r.AnnotationHours());
      rows[d].estimate.Add(r.estimate.mean);
      if (!r.converged) ++rows[d].not_converged;
    }
  }

  bench::Banner(StrFormat("Table 5 — %s (%d trials)", name, trials));
  std::printf("%-8s %18s %18s %14s\n", "method", "annotation (h)",
              "estimation", "missed target");
  bench::Rule();
  for (int d = 0; d < 4; ++d) {
    std::printf("%-8s %18s %18s %11d/%d\n", designs[d],
                bench::MeanStd(rows[d].hours).c_str(),
                bench::MeanStdPercent(rows[d].estimate).c_str(),
                rows[d].not_converged, trials);
  }
  std::printf("TWCS vs SRS cost reduction: %.0f%%\n",
              (1.0 - rows[3].hours.Mean() / rows[0].hours.Mean()) * 100.0);
}

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();

  {
    const Dataset nell = MakeNell(seed);
    RunDataset("NELL (gold acc ~91%)", nell, bench::Trials(200), seed,
               /*budget_hours=*/24.0);
  }
  {
    const Dataset yago = MakeYago(seed);
    RunDataset("YAGO (gold acc ~99%)", yago, bench::Trials(200), seed,
               /*budget_hours=*/24.0);
  }
  {
    const Dataset movie = MakeMovie(seed);
    RunDataset("MOVIE (gold acc ~90%, RCS/WCS capped at 5h)", movie,
               bench::Trials(40), seed, /*budget_hours=*/5.0);
  }

  std::printf(
      "\nPaper (hours): MOVIE SRS 3.53 / RCS >5 / WCS >5 / TWCS 1.4;\n"
      "NELL SRS 2.3 / RCS 8.25 / WCS 1.92 / TWCS 1.85; YAGO SRS 0.45 / RCS 10 "
      "/ WCS 0.49 / TWCS 0.44.\n"
      "Expected shape: TWCS <= WCS < SRS << RCS everywhere; RCS/WCS blow the "
      "budget on MOVIE.\n");
  return 0;
}
