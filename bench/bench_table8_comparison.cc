// Reproduces Table 8: the qualitative comparison of KG accuracy evaluation
// approaches — but with each cell *measured* rather than asserted:
//
//                       SRS    KGEval    Ours (TWCS + incremental)
//   unbiased             yes     no        yes
//   efficient            no      yes*      yes
//   incremental          no      no        yes
//
// Evidence gathered on NELL (static) and an evolving MOVIE-like stream:
//   - unbiasedness: |mean of estimates - gold| across trials;
//   - efficiency:   annotation hours per converged evaluation;
//   - incremental:  cost of re-establishing the target after an update.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/kgeval/kgeval_baseline.h"
#include "core/snapshot_baseline.h"
#include "core/static_evaluator.h"
#include "core/stratified_incremental.h"
#include "datasets/registry.h"
#include "kg/generator.h"
#include "labels/annotator.h"

namespace kgacc {
namespace {

constexpr CostModel kCost{.c1_seconds = 45.0, .c2_seconds = 25.0};

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();
  const int trials = bench::Trials(100);

  const Dataset nell = MakeNell(seed);
  const double gold = Characterize(nell).gold_accuracy;

  // --- SRS and TWCS: bias + cost over trials. -------------------------------
  RunningStats srs_estimates, srs_hours, twcs_estimates, twcs_hours;
  for (int t = 0; t < trials; ++t) {
    EvaluationOptions options;
    options.seed = seed + 11 * t;
    options.min_units = 15;
    SimulatedAnnotator a1(nell.oracle.get(), kCost), a2(nell.oracle.get(), kCost);
    StaticEvaluator e1(nell.View(), &a1, options), e2(nell.View(), &a2, options);
    const EvaluationResult srs = e1.EvaluateSrs();
    const EvaluationResult twcs = e2.EvaluateTwcs();
    srs_estimates.Add(srs.estimate.mean);
    srs_hours.Add(srs.AnnotationHours());
    twcs_estimates.Add(twcs.estimate.mean);
    twcs_hours.Add(twcs.AnnotationHours());
  }

  // --- KGEval: single deterministic run (its estimate has no distribution).
  SimulatedAnnotator kgeval_annotator(nell.oracle.get(), kCost);
  KgEvalBaseline kgeval(*nell.graph, KgEvalBaseline::Options{});
  const KgEvalBaseline::Result kgeval_result = kgeval.Run(&kgeval_annotator);

  // --- Incremental: update cost for ours vs re-running SRS/KGEval. -----------
  // (SRS and KGEval have no incremental mode; their "update cost" is a full
  // re-evaluation. Ours is the SS update cost.)
  Rng rng(seed);
  ClusterPopulation population;
  PerClusterBernoulliOracle oracle(seed ^ 0x77);
  {
    std::vector<uint32_t> sizes = GenerateLogNormalSizes(20000, 0.94, 1.6,
                                                         5000, rng);
    for (uint32_t s : sizes) {
      population.Append(s);
      oracle.Append(0.9);
    }
  }
  EvaluationOptions options;
  options.seed = seed + 1;
  SimulatedAnnotator ss_annotator(&oracle, kCost);
  StratifiedIncrementalEvaluator ss(&population, &ss_annotator, options);
  ss.Initialize();
  SnapshotBaselineEvaluator scratch(&oracle, kCost, options);
  const uint64_t first = population.NumClusters();
  {
    std::vector<uint32_t> sizes = GenerateLogNormalSizes(2000, 0.94, 1.6,
                                                         5000, rng);
    for (uint32_t s : sizes) {
      population.Append(s);
      oracle.Append(0.9);
    }
  }
  const IncrementalUpdateReport ss_update =
      ss.ApplyUpdate(first, population.NumClusters() - first);
  const IncrementalUpdateReport full_redo = scratch.Evaluate(population);

  // --- The table. -------------------------------------------------------------
  bench::Banner("Table 8: summary of KG accuracy evaluation approaches "
                "(measured on NELL / evolving MOVIE-like)");
  std::printf("%-28s %14s %14s %14s\n", "property", "SRS", "KGEval", "Ours");
  bench::Rule();
  std::printf("%-28s %13.1f%% %13.1f%% %13.1f%%\n", "bias |est - gold|",
              std::abs(srs_estimates.Mean() - gold) * 100.0,
              std::abs(kgeval_result.estimated_accuracy - gold) * 100.0,
              std::abs(twcs_estimates.Mean() - gold) * 100.0);
  std::printf("%-28s %14s %14s %14s\n", "statistical guarantee", "CI",
              "none", "CI");
  std::printf("%-28s %13.2fh %13.2fh %13.2fh\n", "static evaluation cost",
              srs_hours.Mean(), kgeval_result.annotation_seconds / 3600.0,
              twcs_hours.Mean());
  // Neither SRS nor KGEval has an incremental mode: their update cost is a
  // full re-evaluation of the evolved graph.
  std::printf("%-28s %13.2fh %13.2fh %13.2fh\n", "cost after 10% update",
              full_redo.StepCostHours(), full_redo.StepCostHours(),
              ss_update.StepCostHours());
  std::printf("%-28s %14s %14s %14s\n", "incremental support", "no", "no",
              "yes (RS/SS)");
  std::printf("\nPaper Table 8: SRS unbiased but inefficient; KGEval efficient"
              " (in annotations) but biased and\nnon-incremental; this "
              "framework is unbiased + efficient + incremental.\n");
  std::printf("(KGEval 'cost after update' shown as a full redo — it has no "
              "incremental mode.)\n");
  return 0;
}
