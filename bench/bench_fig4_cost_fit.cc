// Reproduces Figure 4 (and the fit behind Section 7.1.3): least-squares fit
// of the cost function Cost(G') = |E'| c1 + |G'| c2 to measured annotation
// tasks, recovering c1 = 45s and c2 = 25s, and comparing predicted against
// "actual" task times.
//
// Our "actual" observations are regenerated from the paper's published data
// points (Table 4 and Fig 1 task shapes) plus per-task human-variability
// noise, then the fit is performed exactly as in the paper.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cost/cost_fitter.h"
#include "util/rng.h"

int main() {
  using namespace kgacc;
  Rng rng(bench::Seed());

  // Ground-truth process: c1 = 45s, c2 = 25s with ~8% lognormal-ish task
  // noise (human variability across tasks).
  const CostModel truth{.c1_seconds = 45.0, .c2_seconds = 25.0};
  std::vector<CostObservation> observations = {
      // Paper Table 4: SRS task (174 entities / 174 triples).
      {174, 174, 0.0},
      // Paper Table 4: TWCS m=10 task (24 entities / 178 triples).
      {24, 178, 0.0},
      // Fig 1 triple-level task (50 entities / 50 triples).
      {50, 50, 0.0},
      // Fig 1 entity-level task (11 entities / 50 triples).
      {11, 50, 0.0},
  };
  // A few more task shapes, as a realistic calibration set.
  for (int i = 0; i < 8; ++i) {
    const uint64_t entities = 5 + rng.UniformIndex(60);
    const uint64_t triples = entities + rng.UniformIndex(120);
    observations.push_back({entities, triples, 0.0});
  }
  for (CostObservation& ob : observations) {
    const double exact = truth.SampleCostSeconds(ob.entities, ob.triples);
    ob.seconds = exact * (1.0 + 0.05 * rng.Gaussian());
  }

  const Result<CostModel> fit = FitCostModel(observations);
  if (!fit.ok()) {
    std::fprintf(stderr, "cost fit failed: %s\n", fit.status().ToString().c_str());
    return 1;
  }

  bench::Banner("Figure 4: cost function fitting");
  std::printf("fitted c1 = %.1f s (paper: 45 s)\n", fit->c1_seconds);
  std::printf("fitted c2 = %.1f s (paper: 25 s)\n", fit->c2_seconds);

  const CostFitDiagnostics diag = EvaluateCostFit(*fit, observations);
  std::printf("fit RMSE = %.1f s, max relative error = %.1f%%\n",
              diag.rmse_seconds, diag.max_relative_error * 100.0);

  std::printf("\n%-30s %10s %12s %12s\n", "task (entities/triples)", "actual",
              "predicted", "rel err");
  bench::Rule();
  const char* names[] = {"Table4 SRS (174/174)", "Table4 TWCS (24/178)",
                         "Fig1 triple-level (50/50)",
                         "Fig1 entity-level (11/50)"};
  for (size_t i = 0; i < 4; ++i) {
    const CostObservation& ob = observations[i];
    const double predicted = fit->SampleCostSeconds(ob.entities, ob.triples);
    std::printf("%-30s %10s %12s %11.1f%%\n", names[i],
                FormatDuration(ob.seconds).c_str(),
                FormatDuration(predicted).c_str(),
                (predicted - ob.seconds) / ob.seconds * 100.0);
  }
  std::printf("\nPaper check: approximate cost of the Table 4 tasks is "
              "174*(45+25)/3600 = 3.38 h and (24*45+178*25)/3600 = 1.54 h,\n"
              "close to the measured 3.53 h and 1.4 h.\n");
  return 0;
}
