// Reproduces Figure 9: a sequence of 30 update batches (each ~10% of the
// base KG, 90% accuracy) applied to the base KG, evaluating after each.
//   (1) average estimates across trials: both RS and SS stay unbiased;
//   (2)+(3) fault tolerance: runs whose *initial* evaluation over/under-
//       estimates — RS stochastically refreshes its reservoir and drifts
//       back toward the truth, while SS freezes the biased base stratum
//       forever (its bias only decays with the base stratum's weight).
//
// The graph (sizes and labels) is fixed across runs; only the evaluation
// seed varies, so "a run with a bad start" is a run whose initial *sample*
// was unlucky — the paper's premise. Both methods run through the
// campaign-level IncrementalCampaignDriver (the registry's "rs"/"ss" path).
//
// Machine-readable output: full per-round trajectories of a representative
// run plus the over-/under-estimating runs stream through the JSON telemetry
// sink into BENCH_fig9_evolving_sequence.json (kgacc-trace-v1, one campaign
// per initialize/update step, per-batch ground truth in the metadata;
// destination directory via KGACC_BENCH_JSON_DIR). The former batch-by-batch
// trajectory tables live there now; the console keeps the averaged summary.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/incremental_driver.h"
#include "core/telemetry.h"
#include "kg/cluster_population.h"
#include "kg/generator.h"
#include "labels/annotator.h"
#include "labels/synthetic_oracle.h"

namespace kgacc {
namespace {

constexpr CostModel kCost{.c1_seconds = 45.0, .c2_seconds = 25.0};
constexpr uint64_t kBaseTriples = 1300000;   // ~50% of MOVIE.
constexpr uint64_t kUpdateTriples = 130000;  // ~10% of the base per batch.
constexpr int kBatches = 30;

std::vector<uint32_t> MovieLikeSizes(uint64_t total_triples, Rng& rng) {
  const uint64_t clusters = std::max<uint64_t>(1, total_triples / 9);
  std::vector<uint32_t> sizes =
      GenerateLogNormalSizes(clusters, 0.94, 1.6, 5000, rng);
  ScaleSizesToTotal(&sizes, total_triples);
  return sizes;
}

struct Trajectory {
  double rs_initial = 0.0;
  double ss_initial = 0.0;
  std::vector<double> rs;     // estimate after each batch.
  std::vector<double> ss;
  std::vector<double> truth;  // expected accuracy after each batch.
};

/// The fixed evolving scenario: base + 30 update batches, all at 90%
/// accuracy, with deterministic cluster sizes and labels.
class Fig9Scenario {
 public:
  explicit Fig9Scenario(uint64_t graph_seed) {
    Rng rng(graph_seed);
    base_sizes_ = MovieLikeSizes(kBaseTriples, rng);
    for (int b = 0; b < kBatches; ++b) {
      update_sizes_.push_back(MovieLikeSizes(kUpdateTriples, rng));
    }
    label_seed_ = HashCombine(graph_seed, 0x1abe15ULL);
  }

  /// Runs both methods with the given evaluation seed. When `init_only`,
  /// stops after Initialize (used by the bad-start seed scan). When
  /// `telemetry` is non-null, both drivers stream per-round campaign traces
  /// into it.
  Trajectory Run(uint64_t eval_seed, bool init_only,
                 TelemetrySink* telemetry = nullptr) const {
    ClusterPopulation population(base_sizes_);
    PerClusterBernoulliOracle oracle(
        std::vector<double>(base_sizes_.size(), 0.9), label_seed_);
    double weighted_p = 0.9 * static_cast<double>(population.TotalTriples());

    EvaluationOptions options;
    options.seed = eval_seed;
    options.m = 5;
    options.telemetry = telemetry;
    SimulatedAnnotator a_rs(&oracle, kCost), a_ss(&oracle, kCost);
    IncrementalCampaignDriver rs(IncrementalMethod::kReservoir, &population,
                                 &a_rs, options);
    IncrementalCampaignDriver ss(IncrementalMethod::kStratified, &population,
                                 &a_ss, options);

    Trajectory out;
    out.rs_initial = rs.Initialize().estimate.mean;
    out.ss_initial = ss.Initialize().estimate.mean;
    if (init_only) return out;

    for (int b = 0; b < kBatches; ++b) {
      const uint64_t first = population.NumClusters();
      for (uint32_t s : update_sizes_[b]) {
        population.Append(s);
        oracle.Append(0.9);
        weighted_p += 0.9 * s;
      }
      out.rs.push_back(
          rs.ApplyUpdate(first, update_sizes_[b].size()).estimate.mean);
      out.ss.push_back(
          ss.ApplyUpdate(first, update_sizes_[b].size()).estimate.mean);
      out.truth.push_back(weighted_p /
                          static_cast<double>(population.TotalTriples()));
    }
    return out;
  }

 private:
  std::vector<uint32_t> base_sizes_;
  std::vector<std::vector<uint32_t>> update_sizes_;
  uint64_t label_seed_;
};

void SummarizeTrajectory(const char* title, const Trajectory& trajectory) {
  bench::Banner(title);
  std::printf("initial estimates: RS %s, SS %s (truth 90%%)\n",
              FormatPercent(trajectory.rs_initial, 2).c_str(),
              FormatPercent(trajectory.ss_initial, 2).c_str());
  std::printf("after %d batches: RS %s, SS %s (truth %s) — full per-batch "
              "trajectory in the JSON artifact\n",
              kBatches, FormatPercent(trajectory.rs.back(), 2).c_str(),
              FormatPercent(trajectory.ss.back(), 2).c_str(),
              FormatPercent(trajectory.truth.back(), 2).c_str());
}

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();
  const int trials = bench::Trials(15);
  const Fig9Scenario scenario(seed);
  TraceRecorder recorder;
  std::vector<std::pair<std::string, double>> metadata;

  // ---- Part 1: unbiasedness averaged over trials. -------------------------
  std::vector<RunningStats> rs_by_batch(kBatches), ss_by_batch(kBatches);
  double truth_last = 0.9;
  for (int t = 0; t < trials; ++t) {
    TelemetrySink* sink = nullptr;
    if (t == 0) {
      recorder.SetLabelPrefix("representative/");
      sink = &recorder;
    }
    const Trajectory trajectory = scenario.Run(seed + 7717 * t, false, sink);
    for (int b = 0; b < kBatches; ++b) {
      rs_by_batch[b].Add(trajectory.rs[b]);
      ss_by_batch[b].Add(trajectory.ss[b]);
    }
    if (t == 0) {
      for (int b = 0; b < kBatches; ++b) {
        metadata.emplace_back(StrFormat("truth_batch_%d", b + 1),
                              trajectory.truth[b]);
      }
    }
    truth_last = trajectory.truth.back();
  }
  bench::Banner(StrFormat("Figure 9-1: estimates averaged over %d runs "
                          "(ground truth 90%%)", trials));
  std::printf("%7s %14s %14s\n", "batch", "RS", "SS");
  bench::Rule();
  for (int b = 0; b < kBatches; b += (b < 9 ? 1 : 5)) {
    std::printf("%7d %14s %14s\n", b + 1,
                bench::MeanStdPercent(rs_by_batch[b]).c_str(),
                bench::MeanStdPercent(ss_by_batch[b]).c_str());
  }
  std::printf("final truth: %s — both methods stay unbiased across the "
              "sequence.\n", FormatPercent(truth_last, 2).c_str());
  metadata.emplace_back("truth_final", truth_last);

  // ---- Parts 2+3: fault tolerance from a bad start. -----------------------
  // Scan evaluation seeds for runs where BOTH methods' initial samples were
  // unlucky in the same direction.
  const double kOffset = 0.022;
  uint64_t over_seed = 0, under_seed = 0;
  for (uint64_t s = 1; s < 3000 && (over_seed == 0 || under_seed == 0); ++s) {
    const Trajectory probe = scenario.Run(seed + s * 101, true);
    if (over_seed == 0 && probe.rs_initial > 0.9 + kOffset &&
        probe.ss_initial > 0.9 + kOffset) {
      over_seed = seed + s * 101;
    }
    if (under_seed == 0 && probe.rs_initial < 0.9 - kOffset &&
        probe.ss_initial < 0.9 - kOffset) {
      under_seed = seed + s * 101;
    }
  }
  if (over_seed != 0) {
    recorder.SetLabelPrefix("overstart/");
    SummarizeTrajectory("Figure 9-2: one run starting with over-estimation",
                        scenario.Run(over_seed, false, &recorder));
  }
  if (under_seed != 0) {
    recorder.SetLabelPrefix("understart/");
    SummarizeTrajectory("Figure 9-3: one run starting with under-estimation",
                        scenario.Run(under_seed, false, &recorder));
  }
  std::printf(
      "\nPaper shape: RS stochastically refreshes its reservoir and drifts "
      "back toward the truth;\nSS keeps every annotated base sample, so its "
      "bias persists, decaying only with the base stratum's weight.\n");

  const std::string artifact =
      bench::ArtifactPath("BENCH_fig9_evolving_sequence.json");
  const Status written = WriteTraceJson(artifact, recorder.campaigns(),
                                        metadata);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("per-round trajectories (representative + bad-start runs): "
              "%s\n", artifact.c_str());
  return 0;
}
