// Reproduces Figure 3: correlation between entity (cluster) accuracy and
// cluster size on NELL and YAGO, summarized as a per-size-bucket table
// (mean accuracy, accuracy stddev, #clusters).
//
// Paper shape: larger clusters have higher mean accuracy and lower accuracy
// variance; small clusters span the full range.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "datasets/datasets.h"
#include "labels/truth_oracle.h"
#include "stats/running_stats.h"

namespace kgacc {
namespace {

void Summarize(const char* name, const Dataset& dataset) {
  std::map<uint64_t, RunningStats> by_bucket;  // bucket = size band.
  const KgView& view = dataset.View();
  double min_acc_large = 1.0;
  for (uint64_t c = 0; c < view.NumClusters(); ++c) {
    const uint64_t size = view.ClusterSize(c);
    const double accuracy = RealizedClusterAccuracy(*dataset.oracle, c, size);
    const uint64_t bucket = size <= 5    ? size
                            : size <= 10 ? 6
                            : size <= 20 ? 7
                                         : 8;
    by_bucket[bucket].Add(accuracy);
    if (size >= 8) min_acc_large = std::min(min_acc_large, accuracy);
  }

  bench::Banner(std::string("Figure 3: entity accuracy vs cluster size — ") +
                name);
  std::printf("%-12s %10s %12s %12s\n", "cluster size", "#clusters",
              "mean acc", "acc stddev");
  bench::Rule();
  const char* labels[] = {"",   "1",    "2",     "3",  "4",
                          "5",  "6-10", "11-20", ">20"};
  for (const auto& [bucket, stats] : by_bucket) {
    std::printf("%-12s %10llu %12s %12.3f\n", labels[bucket],
                static_cast<unsigned long long>(stats.Count()),
                FormatPercent(stats.Mean(), 1).c_str(), stats.SampleStdDev());
  }
  std::printf("min accuracy among clusters of size >= 8: %s\n",
              FormatPercent(min_acc_large, 1).c_str());
}

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();
  const Dataset nell = MakeNell(seed);
  const Dataset yago = MakeYago(seed);
  Summarize("NELL", nell);
  Summarize("YAGO", yago);
  std::printf("\nPaper shape: mean accuracy rises and spread shrinks with "
              "cluster size (Fig 3-1, 3-2).\n");
  return 0;
}
