// Reproduces Table 4: manual evaluation cost on MOVIE for SRS vs TWCS(m=10)
// at the 5% MoE / 95% confidence target.
//
// Paper values:
//   SRS:         174 entities / 174 triples, 3.53 h, estimate 88% (MoE 4.85%)
//   TWCS(m=10):   24 entities / 178 triples, 1.4 h,  estimate 90% (MoE 4.97%)

#include <cstdio>

#include "bench_util.h"
#include "core/static_evaluator.h"
#include "datasets/datasets.h"
#include "labels/annotator.h"

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();
  const int trials = bench::Trials(100);
  const CostModel cost{.c1_seconds = 45.0, .c2_seconds = 25.0};

  const Dataset movie = MakeMovie(seed);

  RunningStats srs_entities, srs_triples, srs_hours, srs_estimate;
  RunningStats twcs_entities, twcs_triples, twcs_hours, twcs_estimate;
  for (int t = 0; t < trials; ++t) {
    EvaluationOptions options;
    // The paper's reported runs stop at ~18-24 first-stage units
    // (Tables 4/6); match that floor instead of the conservative 30.
    options.min_units = 15;
    options.seed = seed + 1000 + t;

    SimulatedAnnotator a1(movie.oracle.get(), cost);
    StaticEvaluator srs(movie.View(), &a1, options);
    const EvaluationResult r1 = srs.EvaluateSrs();
    srs_entities.Add(static_cast<double>(r1.ledger.entities_identified));
    srs_triples.Add(static_cast<double>(r1.ledger.triples_annotated));
    srs_hours.Add(r1.AnnotationHours());
    srs_estimate.Add(r1.estimate.mean);

    options.m = 10;  // the paper's Table 4 TWCS configuration.
    SimulatedAnnotator a2(movie.oracle.get(), cost);
    StaticEvaluator twcs(movie.View(), &a2, options);
    const EvaluationResult r2 = twcs.EvaluateTwcs();
    twcs_entities.Add(static_cast<double>(r2.ledger.entities_identified));
    twcs_triples.Add(static_cast<double>(r2.ledger.triples_annotated));
    twcs_hours.Add(r2.AnnotationHours());
    twcs_estimate.Add(r2.estimate.mean);
  }

  bench::Banner(StrFormat("Table 4: manual evaluation cost on MOVIE "
                          "(%d trials, MoE 5%%, 95%% confidence)",
                          trials));
  std::printf("%-14s %22s %16s %18s\n", "method", "task (entities/triples)",
              "time (hours)", "estimation");
  bench::Rule();
  std::printf("%-14s %10.0f / %-10.0f %16s %18s\n", "SRS",
              srs_entities.Mean(), srs_triples.Mean(),
              bench::MeanStd(srs_hours).c_str(),
              bench::MeanStdPercent(srs_estimate).c_str());
  std::printf("%-14s %10.0f / %-10.0f %16s %18s\n", "TWCS (m=10)",
              twcs_entities.Mean(), twcs_triples.Mean(),
              bench::MeanStd(twcs_hours).c_str(),
              bench::MeanStdPercent(twcs_estimate).c_str());
  std::printf("\nPaper: SRS 174/174 -> 3.53 h (est 88%%); TWCS(m=10) 24/178 "
              "-> 1.4 h (est 90%%).\n");
  std::printf("Cost reduction: %.0f%% (paper: ~60%%)\n",
              (1.0 - twcs_hours.Mean() / srs_hours.Mean()) * 100.0);
  return 0;
}
