// Reproduces Figure 7: scalability of TWCS.
//   (1) evaluation time vs KG size: 26M -> 130M triples (MOVIE-FULL scale,
//       REM labels at 90% accuracy) — cost should stay flat;
//   (2) evaluation time vs overall accuracy (10%..90%) at full size — cost
//       peaks at 50% where per-triple label variance is maximal.
//
// The MOVIE-FULL substrate is a size-only ClusterPopulation with lazily
// hashed labels (DESIGN.md), so 130M triples fit in a few hundred MB.

#include <cstdio>

#include "bench_util.h"
#include "core/static_evaluator.h"
#include "datasets/datasets.h"
#include "labels/annotator.h"

namespace kgacc {
namespace {

RunningStats EvaluateTwcsHours(const KgView& view, const TruthOracle& oracle,
                               int trials, uint64_t seed) {
  const CostModel cost{.c1_seconds = 45.0, .c2_seconds = 25.0};
  RunningStats hours;
  for (int t = 0; t < trials; ++t) {
    EvaluationOptions options;
    // The paper's reported runs stop at ~18-24 first-stage units
    // (Tables 4/6); match that floor instead of the conservative 30.
    options.min_units = 15;
    options.seed = seed + 271 * t;
    options.m = 5;
    SimulatedAnnotator annotator(&oracle, cost);
    StaticEvaluator evaluator(view, &annotator, options);
    hours.Add(evaluator.EvaluateTwcs().AnnotationHours());
  }
  return hours;
}

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();
  const int trials = bench::Trials(5);

  bench::Banner(StrFormat("Figure 7-1: TWCS cost vs KG size (REM 90%%, "
                          "%d trials)", trials));
  std::printf("%14s %14s %14s\n", "triples", "entities", "time (h)");
  bench::Rule();
  for (uint64_t millions : {26ull, 52ull, 78ull, 104ull, 130ull}) {
    const Dataset kg = MakeMovieFull(millions * 1000000ull, 0.9, seed);
    const RunningStats hours =
        EvaluateTwcsHours(kg.View(), *kg.oracle, trials, seed + millions);
    std::printf("%13lluM %14llu %14s\n",
                static_cast<unsigned long long>(millions),
                static_cast<unsigned long long>(kg.View().NumClusters()),
                bench::MeanStd(hours).c_str());
  }
  std::printf("Paper shape: evaluation time stays flat as the KG grows.\n");

  bench::Banner(StrFormat("Figure 7-2: TWCS cost vs overall accuracy "
                          "(130M triples, %d trials)", trials));
  std::printf("%10s %14s\n", "accuracy", "time (h)");
  bench::Rule();
  for (double accuracy : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const Dataset kg = MakeMovieFull(130591799ull, accuracy, seed);
    const RunningStats hours = EvaluateTwcsHours(
        kg.View(), *kg.oracle, trials,
        seed + static_cast<uint64_t>(accuracy * 1000));
    std::printf("%9.0f%% %14s\n", accuracy * 100.0,
                bench::MeanStd(hours).c_str());
  }
  std::printf("Paper shape: cost peaks at 50%% accuracy (max label "
              "variance), symmetric toward the ends.\n");
  return 0;
}
