// Reproduces Figure 7: scalability of TWCS — and benchmarks the columnar
// mmap graph store that carries those scales on disk.
//   (1) evaluation time vs KG size: 26M -> 130M triples (MOVIE-FULL scale,
//       REM labels at 90% accuracy) — cost should stay flat;
//   (2) evaluation time vs overall accuracy (10%..90%) at full size — cost
//       peaks at 50% where per-triple label variance is maximal;
//   (3) kgacc-kgstore-v1 substrate: streamed build throughput, O(1) open
//       latency (must NOT scale with triple count), zero-copy lookup and
//       TWCS sampler latency over the mmap-backed graph, written as a
//       kgacc-kgstore-bench-v1 artifact for kgacc_trace_check.
//
// The MOVIE-FULL substrate is a size-only ClusterPopulation with lazily
// hashed labels (DESIGN.md), so 130M triples fit in a few hundred MB; the
// store section streams the same profile to disk and samples it via mmap.
//
// Flags: --store-only              skip sections (1)/(2) (CI's bench-smoke)
//        --store-sizes N,N,...     store section triple counts
//                                  [10000000,100000000]
//        --store-dir DIR           where .kgstore files are built [.]
//        --keep-stores             leave the built files on disk (CI caches
//                                  the largest as an artifact)
//        --out FILE.json           artifact path
//                                  [$KGACC_BENCH_JSON_DIR/BENCH_kgstore.json]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/static_evaluator.h"
#include "datasets/datasets.h"
#include "kg/store/mapped_graph.h"
#include "labels/annotator.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace kgacc {
namespace {

RunningStats EvaluateTwcsHours(const KgView& view, const TruthOracle& oracle,
                               int trials, uint64_t seed) {
  const CostModel cost{.c1_seconds = 45.0, .c2_seconds = 25.0};
  RunningStats hours;
  for (int t = 0; t < trials; ++t) {
    EvaluationOptions options;
    // The paper's reported runs stop at ~18-24 first-stage units
    // (Tables 4/6); match that floor instead of the conservative 30.
    options.min_units = 15;
    options.seed = seed + 271 * t;
    options.m = 5;
    SimulatedAnnotator annotator(&oracle, cost);
    StaticEvaluator evaluator(view, &annotator, options);
    hours.Add(evaluator.EvaluateTwcs().AnnotationHours());
  }
  return hours;
}

struct StoreRow {
  uint64_t triples = 0;
  uint64_t clusters = 0;
  uint64_t file_bytes = 0;
  double build_seconds = 0.0;
  double build_mtriples_per_sec = 0.0;
  double open_ms = 0.0;    ///< min of several cold re-opens.
  double lookup_ns = 0.0;  ///< mean random TripleAt over the mapping.
  double twcs_wall_ms = 0.0;
};

/// Builds, reopens and samples one store size point.
int BenchStoreSize(uint64_t triples, const std::string& dir, uint64_t seed,
                   bool keep, StoreRow* row) {
  const std::string path =
      dir + "/" + StrFormat("movie_full_%llu.kgstore",
                            static_cast<unsigned long long>(triples));
  WallTimer build_timer;
  const Status built = BuildMovieFullStore(path, triples, /*accuracy=*/0.9,
                                           seed);
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.ToString().c_str());
    return 1;
  }
  row->triples = triples;
  row->build_seconds = build_timer.ElapsedSeconds();
  row->build_mtriples_per_sec =
      static_cast<double>(triples) / row->build_seconds / 1e6;

  // Open latency: the whole point of the format is that this is O(1) in
  // `triples`. Minimum over several opens isolates the syscall path from
  // scheduling noise.
  double open_ms_min = 0.0;
  for (int i = 0; i < 7; ++i) {
    WallTimer open_timer;
    Result<MappedGraph> reopened = MappedGraph::Open(path);
    const double ms = open_timer.ElapsedMillis();
    if (!reopened.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   reopened.status().ToString().c_str());
      return 1;
    }
    if (i == 0 || ms < open_ms_min) open_ms_min = ms;
  }
  row->open_ms = open_ms_min;

  Result<MappedGraph> opened = MappedGraph::Open(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  const MappedGraph& graph = *opened;
  row->clusters = graph.NumClusters();
  row->file_bytes = graph.FileBytes();

  // Random zero-copy lookups (the sampler's per-draw access pattern).
  constexpr uint64_t kLookups = 200000;
  Rng rng(seed ^ triples);
  uint64_t sink = 0;
  WallTimer lookup_timer;
  for (uint64_t i = 0; i < kLookups; ++i) {
    const uint64_t c = rng.UniformIndex(graph.NumClusters());
    const TripleRef ref{c, rng.UniformIndex(graph.ClusterSize(c))};
    sink += graph.TripleAt(ref).object.id;
  }
  row->lookup_ns =
      static_cast<double>(lookup_timer.ElapsedNanos()) / kLookups;
  volatile uint64_t observe = sink;  // keep the lookup loop observable.
  (void)observe;

  // One full TWCS campaign over the mmap-backed graph with its embedded
  // labels — the end-to-end sampler latency a serving campaign sees.
  const MappedLabelOracle oracle(&graph);
  WallTimer twcs_timer;
  (void)EvaluateTwcsHours(graph, oracle, /*trials=*/1, seed + triples);
  row->twcs_wall_ms = twcs_timer.ElapsedMillis();

  if (!keep) std::remove(path.c_str());
  return 0;
}

int RunStoreSection(const std::vector<uint64_t>& sizes,
                    const std::string& dir, bool keep,
                    const std::string& out_path, uint64_t seed) {
  bench::Banner(StrFormat("Figure 7-3: kgacc-kgstore-v1 substrate "
                          "(build / open / sample)"));
  std::printf("%14s %12s %12s %10s %11s %10s %10s %12s\n", "triples",
              "clusters", "file_mb", "build_s", "mtriples/s", "open_ms",
              "lookup_ns", "twcs_ms");
  bench::Rule();
  std::vector<StoreRow> rows;
  for (const uint64_t triples : sizes) {
    StoreRow row;
    if (BenchStoreSize(triples, dir, seed, keep, &row) != 0) return 1;
    std::printf("%14llu %12llu %12.1f %10.2f %11.2f %10.3f %10.1f %12.1f\n",
                static_cast<unsigned long long>(row.triples),
                static_cast<unsigned long long>(row.clusters),
                static_cast<double>(row.file_bytes) / 1e6, row.build_seconds,
                row.build_mtriples_per_sec, row.open_ms, row.lookup_ns,
                row.twcs_wall_ms);
    rows.push_back(row);
  }
  std::printf("Expected shape: open_ms flat across sizes (O(1) mmap open); "
              "build throughput flat (streaming writer).\n");

  JsonWriter json;
  json.BeginObject();
  json.Key("schema").String("kgacc-kgstore-bench-v1");
  json.Key("accuracy").Number(0.9);
  json.Key("seed").Uint(seed);
  json.Key("rows").BeginArray();
  for (const StoreRow& row : rows) {
    json.BeginObject();
    json.Key("triples").Uint(row.triples);
    json.Key("clusters").Uint(row.clusters);
    json.Key("file_bytes").Uint(row.file_bytes);
    json.Key("build_seconds").Number(row.build_seconds);
    json.Key("build_mtriples_per_sec").Number(row.build_mtriples_per_sec);
    json.Key("open_ms").Number(row.open_ms);
    json.Key("lookup_ns").Number(row.lookup_ns);
    json.Key("twcs_wall_ms").Number(row.twcs_wall_ms);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.str().c_str(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("artifact: %s\n", out_path.c_str());
  return 0;
}

int Run(const FlagParser& flags) {
  const Status valid = flags.Validate({"store-only", "store_only",
                                       "store-sizes", "store_sizes",
                                       "store-dir", "store_dir",
                                       "keep-stores", "keep_stores", "out",
                                       "help"});
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.message().c_str());
    return 1;
  }
  const uint64_t seed = bench::Seed();
  const int trials = bench::Trials(5);
  const bool store_only = flags.GetBool("store-only", false) ||
                          flags.GetBool("store_only", false);

  if (!store_only) {
    bench::Banner(StrFormat("Figure 7-1: TWCS cost vs KG size (REM 90%%, "
                            "%d trials)", trials));
    std::printf("%14s %14s %14s\n", "triples", "entities", "time (h)");
    bench::Rule();
    for (uint64_t millions : {26ull, 52ull, 78ull, 104ull, 130ull}) {
      const Dataset kg = MakeMovieFull(millions * 1000000ull, 0.9, seed);
      const RunningStats hours =
          EvaluateTwcsHours(kg.View(), *kg.oracle, trials, seed + millions);
      std::printf("%13lluM %14llu %14s\n",
                  static_cast<unsigned long long>(millions),
                  static_cast<unsigned long long>(kg.View().NumClusters()),
                  bench::MeanStd(hours).c_str());
    }
    std::printf("Paper shape: evaluation time stays flat as the KG grows.\n");

    bench::Banner(StrFormat("Figure 7-2: TWCS cost vs overall accuracy "
                            "(130M triples, %d trials)", trials));
    std::printf("%10s %14s\n", "accuracy", "time (h)");
    bench::Rule();
    for (double accuracy : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const Dataset kg = MakeMovieFull(130591799ull, accuracy, seed);
      const RunningStats hours = EvaluateTwcsHours(
          kg.View(), *kg.oracle, trials,
          seed + static_cast<uint64_t>(accuracy * 1000));
      std::printf("%9.0f%% %14s\n", accuracy * 100.0,
                  bench::MeanStd(hours).c_str());
    }
    std::printf("Paper shape: cost peaks at 50%% accuracy (max label "
                "variance), symmetric toward the ends.\n");
  }

  std::vector<uint64_t> sizes;
  const std::string sizes_arg = flags.Has("store-sizes")
                                    ? flags.GetString("store-sizes", "")
                                    : flags.GetString("store_sizes", "");
  if (!sizes_arg.empty()) {
    for (const std::string_view token : SplitString(sizes_arg, ',')) {
      uint64_t parsed = 0;
      if (!ParseUint64(token, &parsed) || parsed == 0) {
        std::fprintf(stderr, "error: bad --store-sizes entry '%.*s'\n",
                     static_cast<int>(token.size()), token.data());
        return 1;
      }
      sizes.push_back(parsed);
    }
  } else {
    sizes = {10000000ull, 100000000ull};
  }
  const std::string dir = flags.Has("store-dir")
                              ? flags.GetString("store-dir", ".")
                              : flags.GetString("store_dir", ".");
  const bool keep = flags.GetBool("keep-stores", false) ||
                    flags.GetBool("keep_stores", false);
  const std::string out = flags.GetString(
      "out", bench::ArtifactPath("BENCH_kgstore.json"));
  return RunStoreSection(sizes, dir, keep, out, seed);
}

}  // namespace
}  // namespace kgacc

int main(int argc, char** argv) {
  kgacc::Result<kgacc::FlagParser> parsed =
      kgacc::FlagParser::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  return kgacc::Run(*parsed);
}
