// Cost-budget sweep: how estimate quality degrades as the annotation budget
// shrinks. Runs the same TWCS campaign under a sweep of `max_cost_seconds`
// budgets (the paper's Section 6 "evaluation under a time budget" framing)
// and reports, per budget: the cost actually spent, achieved MoE, the
// estimate, and convergence.
//
// Each sweep row is annotated with per-phase machine timings
// (sample/annotate/estimate/stopping-check) taken as metrics-registry
// snapshot deltas around the run — the obs subsystem's striped histograms,
// not extra stopwatches, so the timed path is exactly the production path.
//
// Writes BENCH_cost_sweep.json (kgacc-cost-sweep-v1, into
// $KGACC_BENCH_JSON_DIR when set):
//
//   {"schema": "kgacc-cost-sweep-v1",
//    "design": "twcs",
//    "sweep": [{"budget_seconds": ..., "cost_seconds": ...,
//               "estimate": ..., "moe": ..., "units": ..., "rounds": ...,
//               "converged": true|false,
//               "phase_seconds": {"sample": ..., "annotate": ...,
//                                  "estimate": ..., "stopping_check": ...}},
//              ...]}
//
// Invariants the artifact exhibits (and the companion test pins on a small
// instance): spent cost never exceeds budget by more than one round, and is
// non-decreasing in the budget; achieved MoE is non-increasing in the
// budget (more annotation never hurts precision, trial-for-trial).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/design_registry.h"
#include "kg/cluster_population.h"
#include "kg/generator.h"
#include "labels/annotator.h"
#include "labels/synthetic_oracle.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace kgacc {
namespace {

constexpr CostModel kCost{.c1_seconds = 45.0, .c2_seconds = 25.0};

struct SweepRow {
  double budget_seconds = 0.0;
  double cost_seconds = 0.0;
  double estimate = 0.0;
  double moe = 0.0;
  uint64_t units = 0;
  uint64_t rounds = 0;
  bool converged = false;
  double sample_seconds = 0.0;
  double annotate_seconds = 0.0;
  double estimate_seconds = 0.0;
  double stopping_seconds = 0.0;
};

double PhaseSum(const obs::MetricsSnapshot& snapshot, const char* name) {
  const obs::HistogramSnapshot* histogram = snapshot.FindHistogram(name);
  return histogram != nullptr ? histogram->sum_seconds : 0.0;
}

int RunSweep() {
  Rng rng(bench::Seed());
  std::vector<uint32_t> sizes =
      GenerateLogNormalSizes(100000, 1.55, 1.1, 2000, rng);
  PerClusterBernoulliOracle oracle(0x5eed);
  for (size_t i = 0; i < sizes.size(); ++i) oracle.Append(0.85);
  const ClusterPopulation population(std::move(sizes));

  // Budgets from starved (a couple of rounds) to unconstrained; 0 = none.
  const std::vector<double> budgets = {25000,  50000,  100000, 200000,
                                       400000, 800000, 0};

  obs::EnableMetrics(true);
  std::vector<SweepRow> rows;
  bench::Banner("TWCS under an annotation-cost budget (c1=45s, c2=25s)");
  std::printf("%12s %12s %10s %8s %7s %7s %5s %34s\n", "budget", "spent",
              "estimate", "MoE", "units", "rounds", "conv",
              "machine phases (sam/ann/est/stop ms)");
  bench::Rule();
  for (const double budget : budgets) {
    EvaluationOptions options;
    options.seed = bench::Seed();
    options.moe_target = 0.01;  // tight, so the budget is what binds.
    options.max_cost_seconds = budget;
    SimulatedAnnotator annotator(&oracle, kCost);

    obs::MetricsRegistry::Global().ResetValues();
    const Result<EvaluationResult> run = DesignRegistry::Global().Run(
        "twcs", population, &annotator, options);
    if (!run.ok()) {
      std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
      return 1;
    }
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();

    SweepRow row;
    row.budget_seconds = budget;
    row.cost_seconds = run->annotation_seconds;
    row.estimate = run->estimate.mean;
    row.moe = run->moe;
    row.units = run->estimate.num_units;
    row.rounds = run->rounds;
    row.converged = run->converged;
    row.sample_seconds = PhaseSum(snapshot, "engine.round.sample_seconds");
    row.annotate_seconds = PhaseSum(snapshot, "engine.round.annotate_seconds");
    row.estimate_seconds = PhaseSum(snapshot, "engine.round.estimate_seconds");
    row.stopping_seconds =
        PhaseSum(snapshot, "engine.round.stopping_check_seconds");
    rows.push_back(row);

    std::printf("%12s %12.0f %9.2f%% %7.2f%% %7llu %7llu %5s %10.1f/%.1f/%.1f/%.1f\n",
                budget > 0 ? StrFormat("%.0f", budget).c_str() : "none",
                row.cost_seconds, row.estimate * 100.0, row.moe * 100.0,
                static_cast<unsigned long long>(row.units),
                static_cast<unsigned long long>(row.rounds),
                row.converged ? "yes" : "no", row.sample_seconds * 1e3,
                row.annotate_seconds * 1e3, row.estimate_seconds * 1e3,
                row.stopping_seconds * 1e3);
  }
  obs::EnableMetrics(false);

  const std::string path = bench::ArtifactPath("BENCH_cost_sweep.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"kgacc-cost-sweep-v1\",\n");
  std::fprintf(f, "  \"design\": \"twcs\",\n  \"sweep\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    std::fprintf(
        f,
        "    {\"budget_seconds\": %.17g, \"cost_seconds\": %.17g, "
        "\"estimate\": %.17g, \"moe\": %.17g, \"units\": %llu, "
        "\"rounds\": %llu, \"converged\": %s, "
        "\"phase_seconds\": {\"sample\": %.17g, \"annotate\": %.17g, "
        "\"estimate\": %.17g, \"stopping_check\": %.17g}}%s\n",
        row.budget_seconds, row.cost_seconds, row.estimate, row.moe,
        static_cast<unsigned long long>(row.units),
        static_cast<unsigned long long>(row.rounds),
        row.converged ? "true" : "false", row.sample_seconds,
        row.annotate_seconds, row.estimate_seconds, row.stopping_seconds,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\ncost sweep artifact: %s (%zu budgets)\n", path.c_str(),
              rows.size());
  return 0;
}

}  // namespace
}  // namespace kgacc

int main() { return kgacc::RunSweep(); }
