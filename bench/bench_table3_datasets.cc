// Reproduces Table 3: data characteristics of the evaluation KGs.
//
// Paper values:
//                    NELL    YAGO    MOVIE      MOVIE-FULL
//   entities         817     822     288,770    14,495,142
//   triples          1,860   1,386   2,653,870  130,591,799
//   avg cluster size 2.3     1.7     9.2        9.0
//   gold accuracy    91%     99%     90%        N/A

#include <cstdio>

#include "bench_util.h"
#include "datasets/registry.h"

namespace kgacc {
namespace {

void PrintRow(const DatasetCharacteristics& c, bool accuracy_known) {
  std::printf("%-12s %12llu %14llu %10.1f %12s\n", c.name.c_str(),
              static_cast<unsigned long long>(c.num_entities),
              static_cast<unsigned long long>(c.num_triples),
              c.average_cluster_size,
              accuracy_known ? FormatPercent(c.gold_accuracy, 1).c_str()
                             : "N/A");
}

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();

  bench::Banner("Table 3: Data characteristics of various KGs");
  std::printf("%-12s %12s %14s %10s %12s\n", "KG", "entities", "triples",
              "avg|G[e]|", "gold acc");
  bench::Rule();

  PrintRow(Characterize(MakeNell(seed)), /*accuracy_known=*/true);
  PrintRow(Characterize(MakeYago(seed)), /*accuracy_known=*/true);
  PrintRow(Characterize(MakeMovie(seed)), /*accuracy_known=*/true);

  // MOVIE-FULL: characteristics without a full 130M-triple label sweep
  // (the paper likewise reports no gold accuracy at this scale).
  {
    const Dataset full = MakeMovieFull(130591799ull, 0.9, seed);
    DatasetCharacteristics c;
    c.name = full.name;
    c.num_entities = full.View().NumClusters();
    c.num_triples = full.View().TotalTriples();
    c.average_cluster_size = full.View().AverageClusterSize();
    PrintRow(c, /*accuracy_known=*/false);
  }

  std::printf("\nPaper reference: NELL 817/1,860/2.3/91%%; YAGO 822/1,386/1.7/99%%;\n"
              "MOVIE 288,770/2,653,870/9.2/90%%; MOVIE-FULL 14,495,142/130,591,799/9.0/N/A\n");
  return 0;
}
