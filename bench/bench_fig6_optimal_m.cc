// Reproduces Figure 6: the effect of the TWCS second-stage size m (1..20)
// on sample size and annotation time, on NELL and two MOVIE-SYN instances
// (BMM labels), with SRS as reference and the theoretical Eq 10/Eq 12 cost
// band (upper bound: all clusters >= m; lower bound: all singletons).
//
// Paper shape: sampled clusters drop steeply from m=1 and plateau; the
// annotation time is U-shaped (minimum around m=3..5) on MOVIE-SYN and
// monotone-then-flat on NELL (98% of its clusters are below size 5);
// TWCS at m=1 matches SRS (Prop 2).

#include <cstdio>

#include "bench_util.h"
#include "core/optimal_m.h"
#include "core/static_evaluator.h"
#include "datasets/registry.h"
#include "labels/annotator.h"

namespace kgacc {
namespace {

void RunDataset(const char* name, const KgView& view, const TruthOracle& oracle,
                int trials, uint64_t seed) {
  const CostModel cost{.c1_seconds = 45.0, .c2_seconds = 25.0};
  const ClusterPopulationStats stats = BuildPopulationStats(view, oracle);

  // SRS reference.
  RunningStats srs_hours;
  for (int t = 0; t < trials; ++t) {
    EvaluationOptions options;
    // The paper's reported runs stop at ~18-24 first-stage units
    // (Tables 4/6); match that floor instead of the conservative 30.
    options.min_units = 15;
    options.seed = seed + 7919 * t;
    SimulatedAnnotator annotator(&oracle, cost);
    StaticEvaluator evaluator(view, &annotator, options);
    srs_hours.Add(evaluator.EvaluateSrs().AnnotationHours());
  }

  bench::Banner(StrFormat("Figure 6 — %s (%d trials; SRS ref %.2f±%.2f h)",
                          name, trials, srs_hours.Mean(),
                          srs_hours.SampleStdDev()));
  std::printf("%4s %16s %16s %12s %22s\n", "m", "clusters", "triples",
              "time (h)", "theory band (h)");
  bench::Rule();

  double best_time = 0.0;
  uint64_t best_m = 1;
  for (uint64_t m = 1; m <= 20; ++m) {
    RunningStats clusters, triples, hours;
    for (int t = 0; t < trials; ++t) {
      EvaluationOptions options;
    // The paper's reported runs stop at ~18-24 first-stage units
    // (Tables 4/6); match that floor instead of the conservative 30.
    options.min_units = 15;
      options.m = m;
      options.seed = seed + 104729 * t + m;
      SimulatedAnnotator annotator(&oracle, cost);
      StaticEvaluator evaluator(view, &annotator, options);
      const EvaluationResult r = evaluator.EvaluateTwcs();
      clusters.Add(static_cast<double>(r.estimate.num_units));
      triples.Add(static_cast<double>(r.ledger.triples_annotated));
      hours.Add(r.AnnotationHours());
    }
    const TwcsCostBand band =
        TwcsPredictedCost(stats, m, 0.05, 0.05, cost.c1_seconds, cost.c2_seconds);
    std::printf("%4llu %16s %16s %12s %10.2f – %-9.2f\n",
                static_cast<unsigned long long>(m),
                bench::MeanStd(clusters, 0).c_str(),
                bench::MeanStd(triples, 0).c_str(),
                bench::MeanStd(hours).c_str(), band.lower_seconds / 3600.0,
                band.upper_seconds / 3600.0);
    if (m == 1 || hours.Mean() < best_time) {
      best_time = hours.Mean();
      best_m = m;
    }
  }
  const OptimalMResult predicted = ChooseOptimalM(stats, cost, 0.05, 0.05, 20);
  std::printf("empirical best m = %llu; Eq 12 predicted best m = %llu "
              "(paper: optimum in 3..5)\n",
              static_cast<unsigned long long>(best_m),
              static_cast<unsigned long long>(predicted.best_m));
}

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();

  {
    const Dataset nell = MakeNell(seed);
    RunDataset("NELL", nell.View(), *nell.oracle, bench::Trials(100), seed);
  }
  {
    // MOVIE-SYN with the default BMM (c = 0.01, sigma = 0.1).
    const Dataset syn = MakeMovieSyn(BmmParams{.k = 3, .c = 0.01, .sigma = 0.1},
                                     seed);
    RunDataset("MOVIE-SYN (c=0.01, sigma=0.1)", syn.View(), *syn.oracle,
               bench::Trials(20), seed);
  }
  {
    // MOVIE-SYN with weaker noise (sigma = 0.05): clusters more homogeneous,
    // TWCS beats SRS by a wider margin (the paper's eps=10% instance).
    const Dataset syn = MakeMovieSyn(BmmParams{.k = 3, .c = 0.01, .sigma = 0.05},
                                     seed + 1);
    RunDataset("MOVIE-SYN (c=0.01, sigma=0.05)", syn.View(), *syn.oracle,
               bench::Trials(20), seed);
  }

  std::printf("\nPaper shape: cluster draws plateau after m~5; time is "
              "U-shaped with the minimum at m in 3..5;\nm=1 matches SRS "
              "(Proposition 2).\n");
  return 0;
}
