// Reproduces Table 7: TWCS with stratification (cumulative sqrt-F size
// strata, and oracle accuracy strata) vs plain TWCS and SRS on NELL,
// MOVIE-SYN (c=0.01, sigma=0.1) and MOVIE.
//
// Paper values (hours):
//   NELL:      SRS 2.3 / TWCS 1.85 / size-strat 1.90 / oracle-strat 1.04
//   MOVIE-SYN: SRS 6.99 / TWCS 5.25 / size-strat 3.97 / oracle-strat 2.87
//   MOVIE:     SRS 3.53 / TWCS 1.4 / size-strat 1.3 / oracle N/A
// Shape: size stratification helps a lot when labels follow the BMM
// (accuracy correlates with size), is ~neutral on NELL; oracle
// stratification lower-bounds the achievable cost.

#include <cstdio>

#include "bench_util.h"
#include "core/static_evaluator.h"
#include "core/stratified_evaluator.h"
#include "datasets/registry.h"
#include "labels/annotator.h"

namespace kgacc {
namespace {

void RunDataset(const char* name, const Dataset& dataset, int num_strata,
                int trials, uint64_t seed, bool with_oracle) {
  const CostModel cost{.c1_seconds = 45.0, .c2_seconds = 25.0};
  const ClusterPopulationStats stats =
      BuildPopulationStats(dataset.View(), *dataset.oracle);
  const Strata size_strata =
      StratifiedTwcsEvaluator::SizeStrata(dataset.View(), num_strata);
  const Strata oracle_strata =
      with_oracle ? StratifiedTwcsEvaluator::OracleStrata(
                        dataset.View(), *dataset.oracle, num_strata)
                  : Strata{};

  RunningStats hours[4], estimate[4];
  for (int t = 0; t < trials; ++t) {
    EvaluationOptions options;
    // The paper's reported runs stop at ~18-24 first-stage units
    // (Tables 4/6); match that floor instead of the conservative 30.
    options.min_units = 15;
    options.seed = seed + 101 * t;

    {
      SimulatedAnnotator annotator(dataset.oracle.get(), cost);
      StaticEvaluator evaluator(dataset.View(), &annotator, options);
      const EvaluationResult r = evaluator.EvaluateSrs();
      hours[0].Add(r.AnnotationHours());
      estimate[0].Add(r.estimate.mean);
    }
    {
      SimulatedAnnotator annotator(dataset.oracle.get(), cost);
      StaticEvaluator evaluator(dataset.View(), &annotator, options);
      evaluator.SetPopulationStatsForAutoM(&stats);
      const EvaluationResult r = evaluator.EvaluateTwcs();
      hours[1].Add(r.AnnotationHours());
      estimate[1].Add(r.estimate.mean);
    }
    {
      SimulatedAnnotator annotator(dataset.oracle.get(), cost);
      StratifiedTwcsEvaluator evaluator(dataset.View(), &annotator, options);
      const EvaluationResult r = evaluator.Evaluate(size_strata);
      hours[2].Add(r.AnnotationHours());
      estimate[2].Add(r.estimate.mean);
    }
    if (with_oracle) {
      SimulatedAnnotator annotator(dataset.oracle.get(), cost);
      StratifiedTwcsEvaluator evaluator(dataset.View(), &annotator, options);
      const EvaluationResult r = evaluator.Evaluate(oracle_strata);
      hours[3].Add(r.AnnotationHours());
      estimate[3].Add(r.estimate.mean);
    }
  }

  bench::Banner(StrFormat("Table 7 — %s (%d trials, %zu size strata)", name,
                          trials, size_strata.NumStrata()));
  std::printf("%-28s %16s %18s\n", "method", "cost (h)", "estimation");
  bench::Rule();
  const char* methods[4] = {"SRS", "TWCS", "TWCS w/ size strat",
                            "TWCS w/ oracle strat"};
  for (int i = 0; i < (with_oracle ? 4 : 3); ++i) {
    std::printf("%-28s %16s %18s\n", methods[i],
                bench::MeanStd(hours[i]).c_str(),
                bench::MeanStdPercent(estimate[i]).c_str());
  }
  if (!with_oracle) {
    std::printf("%-28s %16s %18s\n", methods[3], "N/A", "N/A");
  }
}

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();

  {
    const Dataset nell = MakeNell(seed);
    // Paper: NELL gets two strata.
    RunDataset("NELL (gold acc ~91%)", nell, 2, bench::Trials(200), seed,
               /*with_oracle=*/true);
  }
  {
    const Dataset syn =
        MakeMovieSyn(BmmParams{.k = 3, .c = 0.01, .sigma = 0.1}, seed);
    // Paper: MOVIE-SYN gets four strata.
    RunDataset("MOVIE-SYN (c=0.01, sigma=0.1)", syn, 4, bench::Trials(20),
               seed, /*with_oracle=*/true);
  }
  {
    const Dataset movie = MakeMovie(seed);
    // Paper: MOVIE has no exhaustive gold labels -> oracle strat is N/A.
    RunDataset("MOVIE (gold acc ~90%)", movie, 4, bench::Trials(20), seed,
               /*with_oracle=*/false);
  }

  std::printf(
      "\nPaper (hours): NELL 2.3/1.85/1.90/1.04; MOVIE-SYN 6.99/5.25/3.97/2.87; "
      "MOVIE 3.53/1.4/1.3/N-A.\nShape: size stratification shines on "
      "BMM-labeled MOVIE-SYN, is ~neutral on NELL; oracle stratification is "
      "the lower bound.\n");
  return 0;
}
