// Reproduces Table 6: TWCS vs the KGEval baseline (Ojha & Talukdar 2017) on
// NELL and YAGO — machine time for sample generation/inference, number of
// triples annotated, annotation time and the estimate.
//
// Paper values:
//   NELL: KGEval 12.44 h machine / 140 triples / 2.3 h annotation / 91.84%
//         TWCS  <1 s machine / 149±47 triples / 1.85±0.6 h / 91.63%±2.3%
//   YAGO: KGEval 18.13 h machine / 204 triples / 3.17 h annotation / 99.3%
//         TWCS  <1 s machine / 32±5 triples / 0.44±0.07 h / 99.2%
//
// Our KGEval reimplementation is a simplified C++ PSL-like propagator, so
// its absolute machine time is far below the original Java/PSL stack; the
// preserved shape is the orders-of-magnitude gap to TWCS, the comparable
// annotation counts, and the lack of a statistical guarantee.

#include <cstdio>

#include "bench_util.h"
#include "core/design_registry.h"
#include "core/static_evaluator.h"
#include "datasets/registry.h"
#include "labels/annotator.h"

namespace kgacc {
namespace {

void RunDataset(const char* name, const Dataset& dataset, int twcs_trials,
                uint64_t seed) {
  const CostModel cost{.c1_seconds = 45.0, .c2_seconds = 25.0};

  // --- KGEval through the registry (single run; its control loop is
  // deterministic). -------------------------------------------------------
  SimulatedAnnotator kgeval_annotator(dataset.oracle.get(), cost);
  const Result<EvaluationResult> kgeval_run = DesignRegistry::Global().Run(
      "kgeval", dataset.View(), &kgeval_annotator, EvaluationOptions{});
  if (!kgeval_run.ok()) {
    std::fprintf(stderr, "error: %s\n", kgeval_run.status().ToString().c_str());
    return;
  }
  const EvaluationResult& kgeval_result = *kgeval_run;

  // --- TWCS over trials. --------------------------------------------------
  const ClusterPopulationStats stats =
      BuildPopulationStats(dataset.View(), *dataset.oracle);
  RunningStats twcs_triples, twcs_hours, twcs_estimate, twcs_machine;
  for (int t = 0; t < twcs_trials; ++t) {
    EvaluationOptions options;
    options.seed = seed + 31 * t;
    SimulatedAnnotator annotator(dataset.oracle.get(), cost);
    StaticEvaluator evaluator(dataset.View(), &annotator, options);
    evaluator.SetPopulationStatsForAutoM(&stats);
    const EvaluationResult r = evaluator.EvaluateTwcs();
    twcs_triples.Add(static_cast<double>(r.ledger.triples_annotated));
    twcs_hours.Add(r.AnnotationHours());
    twcs_estimate.Add(r.estimate.mean);
    twcs_machine.Add(r.machine_seconds);
  }

  bench::Banner(StrFormat("Table 6 — %s", name));
  std::printf("%-26s %18s %18s\n", "", "KGEval", "TWCS");
  bench::Rule();
  std::printf("%-26s %18s %18s\n", "machine time",
              FormatDuration(kgeval_result.machine_seconds).c_str(),
              FormatDuration(twcs_machine.Mean()).c_str());
  std::printf("%-26s %18llu %18s\n", "# triples annotated",
              static_cast<unsigned long long>(
                  kgeval_result.ledger.triples_annotated),
              bench::MeanStd(twcs_triples, 0).c_str());
  std::printf("%-26s %18s %18s\n", "annotation time (h)",
              StrFormat("%.2f", kgeval_result.AnnotationHours()).c_str(),
              bench::MeanStd(twcs_hours).c_str());
  std::printf("%-26s %17.2f%% %18s\n", "estimation",
              kgeval_result.estimate.mean * 100.0,
              bench::MeanStdPercent(twcs_estimate).c_str());
  std::printf("%-26s %18s %18s\n", "statistical guarantee", "none",
              "MoE<=5% @95%");
  std::printf("machine-time ratio KGEval/TWCS: %.0fx\n",
              kgeval_result.machine_seconds /
                  std::max(1e-9, twcs_machine.Mean()));
}

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();
  const int trials = bench::Trials(200);

  {
    const Dataset nell = MakeNell(seed);
    RunDataset("NELL (gold acc ~91%)", nell, trials, seed);
  }
  {
    const Dataset yago = MakeYago(seed);
    RunDataset("YAGO (gold acc ~99%)", yago, trials, seed);
  }

  std::printf(
      "\nPaper: KGEval needed 12.44 h (NELL) / 18.13 h (YAGO) of machine time "
      "on its PSL stack vs <1 s for TWCS\n(our C++ reimplementation is far "
      "faster in absolute terms; the orders-of-magnitude gap to TWCS and\n"
      "the annotation-count relationship are the reproduced shape).\n");
  return 0;
}
