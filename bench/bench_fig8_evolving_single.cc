// Reproduces Figure 8: incremental evaluation on an evolving KG with a
// single update batch.
//   (1) evaluation time vs update size (130K..796K triples, update accuracy
//       90%) for Baseline (re-evaluate from scratch), RS (reservoir) and SS
//       (stratified);
//   (2) evaluation time vs update accuracy (20%..80%) at 796K triples.
//
// Setup mirrors Section 7.3: the base KG is a 50%-of-MOVIE-sized population
// with REM labels at 90% accuracy; updates arrive as independent clusters.
// RS and SS run through the campaign-level IncrementalCampaignDriver — the
// same code path as the registry's "rs"/"ss" designs.
//
// Machine-readable output: the per-round campaign traces of each cell's
// first trial (initialize + update, all three methods) are written through
// the JSON telemetry sink as BENCH_fig8_evolving_single.json
// (kgacc-trace-v1; destination directory via KGACC_BENCH_JSON_DIR).
//
// Paper shape: Baseline >> RS > SS; RS grows with update size; SS is nearly
// flat in update size but peaks when update accuracy nears 50%.

#include <cstdio>

#include "bench_util.h"
#include "core/incremental_driver.h"
#include "core/snapshot_baseline.h"
#include "core/telemetry.h"
#include "kg/cluster_population.h"
#include "kg/generator.h"
#include "labels/synthetic_oracle.h"
#include "labels/annotator.h"

namespace kgacc {
namespace {

constexpr CostModel kCost{.c1_seconds = 45.0, .c2_seconds = 25.0};
constexpr uint64_t kBaseClusters = 144385;  // ~50% of MOVIE's entities.
constexpr double kBaseAccuracy = 0.9;

struct Evolving {
  ClusterPopulation population;
  PerClusterBernoulliOracle oracle{0};
  double weighted_p_sum = 0.0;

  void Append(const std::vector<uint32_t>& sizes, double accuracy) {
    for (uint32_t s : sizes) {
      population.Append(s);
      oracle.Append(accuracy);
      weighted_p_sum += static_cast<double>(s) * accuracy;
    }
  }
  double ExpectedAccuracy() const {
    return weighted_p_sum / static_cast<double>(population.TotalTriples());
  }
};

std::vector<uint32_t> MovieLikeSizes(uint64_t total_triples, Rng& rng) {
  const uint64_t clusters =
      std::max<uint64_t>(1, total_triples / 9);  // MOVIE's ~9 avg size.
  std::vector<uint32_t> sizes =
      GenerateLogNormalSizes(clusters, 0.94, 1.6, 5000, rng);
  ScaleSizesToTotal(&sizes, total_triples);
  return sizes;
}

struct Cell {
  RunningStats hours;
  RunningStats estimate;
};

/// One experiment cell: applies one update batch and measures the update
/// evaluation cost per method. The first trial's campaigns stream into
/// `recorder` (label-prefixed with `cell_label`).
void RunCell(const std::string& cell_label, uint64_t update_triples,
             double update_accuracy, int trials, uint64_t seed, Cell* baseline,
             Cell* rs, Cell* ss, double* overall_accuracy,
             TraceRecorder* recorder) {
  for (int t = 0; t < trials; ++t) {
    Rng rng(seed + 1009 * t);
    Evolving kg;
    kg.oracle = PerClusterBernoulliOracle(seed + 7 * t);
    kg.Append(MovieLikeSizes(kBaseClusters * 9, rng), kBaseAccuracy);

    EvaluationOptions options;
    options.seed = seed + 31 * t;
    options.m = 5;
    if (t == 0) {
      recorder->SetLabelPrefix(cell_label + "/");
      options.telemetry = recorder;
    }

    SimulatedAnnotator a_rs(&kg.oracle, kCost), a_ss(&kg.oracle, kCost);
    IncrementalCampaignDriver rs_eval(IncrementalMethod::kReservoir,
                                      &kg.population, &a_rs, options);
    IncrementalCampaignDriver ss_eval(IncrementalMethod::kStratified,
                                      &kg.population, &a_ss, options);
    rs_eval.Initialize();
    ss_eval.Initialize();

    const uint64_t first = kg.population.NumClusters();
    kg.Append(MovieLikeSizes(update_triples, rng), update_accuracy);
    const uint64_t count = kg.population.NumClusters() - first;
    *overall_accuracy = kg.ExpectedAccuracy();

    SnapshotBaselineEvaluator base_eval(&kg.oracle, kCost, options);
    const IncrementalUpdateReport rb = base_eval.Evaluate(kg.population);
    baseline->hours.Add(rb.StepCostHours());
    baseline->estimate.Add(rb.estimate.mean);

    const EvaluationResult rr = rs_eval.ApplyUpdate(first, count);
    rs->hours.Add(rr.AnnotationHours());
    rs->estimate.Add(rr.estimate.mean);

    const EvaluationResult rq = ss_eval.ApplyUpdate(first, count);
    ss->hours.Add(rq.AnnotationHours());
    ss->estimate.Add(rq.estimate.mean);
  }
}

void PrintCell(const char* label, double overall, const Cell& baseline,
               const Cell& rs, const Cell& ss) {
  std::printf("%-14s %8.0f%% %14s %14s %14s\n", label, overall * 100.0,
              bench::MeanStd(baseline.hours).c_str(),
              bench::MeanStd(rs.hours).c_str(),
              bench::MeanStd(ss.hours).c_str());
}

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();
  const int trials = bench::Trials(15);
  TraceRecorder recorder;
  std::vector<std::pair<std::string, double>> metadata;

  bench::Banner(StrFormat("Figure 8-1: varying update size (update accuracy "
                          "90%%, %d trials) — update-evaluation hours", trials));
  std::printf("%-14s %9s %14s %14s %14s\n", "update size", "overall",
              "Baseline", "RS", "SS");
  bench::Rule();
  for (uint64_t update_triples : {130000ull, 265000ull, 530000ull, 796000ull}) {
    Cell baseline, rs, ss;
    double overall = 0.0;
    const std::string label = StrFormat(
        "size%lluK", static_cast<unsigned long long>(update_triples / 1000));
    RunCell(label, update_triples, 0.9, trials, seed + update_triples,
            &baseline, &rs, &ss, &overall, &recorder);
    metadata.emplace_back("truth_" + label, overall);
    PrintCell(StrFormat("%lluK", static_cast<unsigned long long>(
                                     update_triples / 1000)).c_str(),
              overall, baseline, rs, ss);
  }
  std::printf("Paper shape: Baseline >> RS > SS; RS cost grows with update "
              "size, SS only creeps up.\n");

  bench::Banner(StrFormat("Figure 8-2: varying update accuracy (update size "
                          "796K, %d trials) — update-evaluation hours", trials));
  std::printf("%-14s %9s %14s %14s %14s\n", "update acc", "overall",
              "Baseline", "RS", "SS");
  bench::Rule();
  for (double update_accuracy : {0.2, 0.4, 0.6, 0.8}) {
    Cell baseline, rs, ss;
    double overall = 0.0;
    const std::string label =
        StrFormat("acc%.0f", update_accuracy * 100.0);
    RunCell(label, 796000, update_accuracy, trials,
            seed + static_cast<uint64_t>(update_accuracy * 1000), &baseline,
            &rs, &ss, &overall, &recorder);
    metadata.emplace_back("truth_" + label, overall);
    PrintCell(FormatPercent(update_accuracy, 0).c_str(), overall, baseline, rs,
              ss);
  }
  std::printf("Paper shape: Baseline/RS get cheaper as the update (and thus "
              "overall KG) gets more accurate;\nSS peaks when update accuracy "
              "approaches 50%% and wins overall (20-67%% cheaper than RS).\n");

  const std::string artifact =
      bench::ArtifactPath("BENCH_fig8_evolving_single.json");
  const Status written = WriteTraceJson(artifact, recorder.campaigns(),
                                        metadata);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("\nper-round trajectories (first trial per cell): %s\n",
              artifact.c_str());
  return 0;
}
