// bench_serve_latency — load generator for the kgacc_serve daemon.
//
// Drives a kgacc-serve-v1 endpoint with concurrent client connections and
// reports client-observed request latency percentiles per request type,
// plus aggregate throughput. Two modes:
//
//   closed loop (default): each client fires its next request the moment
//     the previous response arrives — measures the server's native latency
//     under full load.
//   open loop (--target-qps Q): requests are launched on a fixed schedule
//     spread across clients — measures latency at a controlled arrival
//     rate, including any queueing delay behind a slow server.
//
// With --port it targets a running daemon; without it the bench self-hosts
// an in-process ServeServer on an ephemeral loopback port, so CI needs no
// process choreography.
//
// The workload is a steady campaign-driving mix per client: one session
// each, then repeated {step 1 round, query-estimate, every 8th iteration a
// stream-trace}; a campaign that converges is replaced by a fresh
// start-campaign, so the mix also exercises session creation under load.
//
// Writes BENCH_serve_latency.json (kgacc-serve-bench-v1) for
// kgacc_trace_check --max-serve-p99 / --min-serve-qps gating.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/graph_store.h"
#include "serve/protocol.h"
#include "serve/serve_client.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "util/flags.h"
#include "util/json.h"

namespace kgacc::serve {
namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kUsage = R"(bench_serve_latency — kgacc_serve load generator

  --port P            target a running daemon (default: self-host in-process)
  --clients N         concurrent client connections            [4]
  --duration-seconds S  wall-clock measurement window          [3]
  --target-qps Q      open-loop arrival rate, total across clients
                      (0 = closed loop)                        [0]
  --graph NAME        graph to evaluate                        [nell]
  --design NAME       registered design                        [twcs]
  --seed S            dataset seed for self-hosted graphs      [42]
  --out FILE          artifact path (default: BENCH_serve_latency.json
                      under $KGACC_BENCH_JSON_DIR)
)";

struct OpStats {
  std::string op;
  std::vector<double> latencies_ms;

  void Merge(const OpStats& other) {
    latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(),
                        other.latencies_ms.end());
  }
};

/// Per-client latency log: one vector per request type, merged after the run.
struct ClientLog {
  OpStats start_campaign{"start-campaign", {}};
  OpStats step{"step", {}};
  OpStats query_estimate{"query-estimate", {}};
  OpStats stream_trace{"stream-trace", {}};
  uint64_t errors = 0;
};

double PercentileMs(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Issues one request, records its latency, returns the response line (empty
/// on transport error).
std::string TimedCall(ServeClient* client, const std::string& request,
                      OpStats* stats, uint64_t* errors) {
  const Clock::time_point start = Clock::now();
  Result<std::string> response = client->Call(request);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  if (!response.ok()) {
    ++*errors;
    return "";
  }
  stats->latencies_ms.push_back(ms);
  if (response.value().find("\"ok\": true") == std::string::npos) ++*errors;
  return std::move(response).value();
}

void ClientMain(int port, const std::string& graph, const std::string& design,
                double per_client_qps, Clock::time_point deadline,
                ClientLog* log) {
  ServeClient client;
  if (!client.Connect(port).ok()) {
    ++log->errors;
    return;
  }
  const std::string start_request = BuildStartCampaign(
      graph, design, R"({"moe_target": 0.01, "batch_units": 5})");

  std::string session;
  auto start_campaign = [&]() {
    const std::string response = TimedCall(&client, start_request,
                                           &log->start_campaign, &log->errors);
    session.clear();
    Result<JsonValue> parsed = JsonValue::Parse(response);
    if (parsed.ok() && parsed.value().is_object()) {
      const JsonValue* id = parsed.value().Find("session");
      if (id != nullptr && id->is_string()) session = id->AsString();
    }
  };
  start_campaign();
  if (session.empty()) {
    ++log->errors;
    return;
  }

  const bool open_loop = per_client_qps > 0;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(open_loop ? 1.0 / per_client_qps : 0.0));
  Clock::time_point next_send = Clock::now();
  for (uint64_t i = 0; Clock::now() < deadline; ++i) {
    if (open_loop) {
      std::this_thread::sleep_until(next_send);
      next_send += interval;
    }
    std::string response;
    if (i % 8 == 7) {
      const Clock::time_point start = Clock::now();
      Result<std::vector<std::string>> lines =
          client.CallMulti(BuildStreamTrace(session), StreamTraceExtraLines);
      const double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                                  start)
                            .count();
      if (lines.ok()) {
        log->stream_trace.latencies_ms.push_back(ms);
      } else {
        ++log->errors;
      }
    } else if (i % 2 == 0) {
      response =
          TimedCall(&client, BuildStep(session, 1), &log->step, &log->errors);
    } else {
      response = TimedCall(&client, BuildQueryEstimate(session),
                           &log->query_estimate, &log->errors);
    }
    if (response.find("\"state\": \"completed\"") != std::string::npos) {
      start_campaign();
      if (session.empty()) return;
    }
  }
}

int Main(int argc, char** argv) {
  Result<FlagParser> flags_or = FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n", flags_or.status().message().c_str());
    return 2;
  }
  const FlagParser& flags = std::move(flags_or).value();
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const Status valid = flags.Validate({"port", "clients", "duration-seconds",
                                       "target-qps", "graph", "design", "seed",
                                       "out", "help"});
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n%s", valid.message().c_str(), kUsage);
    return 2;
  }
  const uint64_t port_flag = flags.GetUint64("port", 0).value();
  const uint64_t clients = std::max<uint64_t>(flags.GetUint64("clients", 4).value(), 1);
  const double duration = flags.GetDouble("duration-seconds", 3.0).value();
  const double target_qps = flags.GetDouble("target-qps", 0.0).value();
  const std::string graph = flags.GetString("graph", "nell");
  const std::string design = flags.GetString("design", "twcs");
  const uint64_t seed = flags.GetUint64("seed", 42).value();
  const std::string out_path = flags.GetString(
      "out", kgacc::bench::ArtifactPath("BENCH_serve_latency.json"));

  // Self-host unless pointed at a daemon.
  GraphStore graphs;
  std::unique_ptr<SessionManager> manager;
  std::unique_ptr<ServeServer> server;
  int port = static_cast<int>(port_flag);
  if (port == 0) {
    Result<std::shared_ptr<const Dataset>> loaded = graphs.Load(graph, seed);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
      return 1;
    }
    manager = std::make_unique<SessionManager>(&graphs);
    server = std::make_unique<ServeServer>(manager.get(), 0);
    const Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "error: %s\n", started.message().c_str());
      return 1;
    }
    port = server->port();
    std::printf("self-hosted server on port %d\n", port);
  } else {
    // Make sure the daemon has the graph (cheap no-op when preloaded).
    ServeClient setup;
    if (!setup.Connect(port).ok()) {
      std::fprintf(stderr, "error: cannot connect to port %d\n", port);
      return 1;
    }
    Result<std::string> response = setup.Call(BuildLoadGraph(graph, seed));
    if (!response.ok() ||
        response.value().find("\"ok\": true") == std::string::npos) {
      std::fprintf(stderr, "error: load-graph %s failed\n", graph.c_str());
      return 1;
    }
  }

  const double per_client_qps =
      target_qps > 0 ? target_qps / static_cast<double>(clients) : 0.0;
  std::vector<ClientLog> logs(clients);
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(duration));
  threads.reserve(clients);
  for (uint64_t i = 0; i < clients; ++i) {
    threads.emplace_back(ClientMain, port, graph, design, per_client_qps,
                         deadline, &logs[i]);
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  if (server != nullptr) server->Shutdown();

  // Merge per-client logs.
  OpStats merged[] = {{"start-campaign", {}},
                      {"step", {}},
                      {"query-estimate", {}},
                      {"stream-trace", {}}};
  uint64_t errors = 0;
  for (const ClientLog& log : logs) {
    merged[0].Merge(log.start_campaign);
    merged[1].Merge(log.step);
    merged[2].Merge(log.query_estimate);
    merged[3].Merge(log.stream_trace);
    errors += log.errors;
  }
  uint64_t total = 0;
  for (const OpStats& stats : merged) total += stats.latencies_ms.size();
  const double qps = elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0;

  JsonWriter json;
  json.BeginObject();
  json.Key("schema").String("kgacc-serve-bench-v1");
  json.Key("mode").String(target_qps > 0 ? "open" : "closed");
  json.Key("clients").Uint(clients);
  json.Key("graph").String(graph);
  json.Key("design").String(design);
  json.Key("target_qps").Number(target_qps);
  json.Key("duration_seconds").Number(elapsed);
  json.Key("total_requests").Uint(total);
  json.Key("errors").Uint(errors);
  json.Key("qps").Number(qps);
  json.Key("request_types").BeginArray();
  std::printf("%-16s %8s %9s %9s %9s %9s\n", "op", "count", "p50_ms",
              "p95_ms", "p99_ms", "max_ms");
  for (OpStats& stats : merged) {
    std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
    const double p50 = PercentileMs(stats.latencies_ms, 0.50);
    const double p95 = PercentileMs(stats.latencies_ms, 0.95);
    const double p99 = PercentileMs(stats.latencies_ms, 0.99);
    const double max =
        stats.latencies_ms.empty() ? 0.0 : stats.latencies_ms.back();
    double sum = 0;
    for (const double ms : stats.latencies_ms) sum += ms;
    const double mean = stats.latencies_ms.empty()
                            ? 0.0
                            : sum / static_cast<double>(
                                        stats.latencies_ms.size());
    json.BeginObject();
    json.Key("op").String(stats.op);
    json.Key("count").Uint(stats.latencies_ms.size());
    json.Key("mean_ms").Number(mean);
    json.Key("p50_ms").Number(p50);
    json.Key("p95_ms").Number(p95);
    json.Key("p99_ms").Number(p99);
    json.Key("max_ms").Number(max);
    json.EndObject();
    std::printf("%-16s %8zu %9.3f %9.3f %9.3f %9.3f\n", stats.op.c_str(),
                stats.latencies_ms.size(), p50, p95, p99, max);
  }
  json.EndArray();
  json.EndObject();

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.str().c_str(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("%s: %llu requests in %.2fs (%.0f qps, %llu errors) -> %s\n",
              target_qps > 0 ? "open-loop" : "closed-loop",
              static_cast<unsigned long long>(total), elapsed, qps,
              static_cast<unsigned long long>(errors), out_path.c_str());
  return errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace kgacc::serve

int main(int argc, char** argv) { return kgacc::serve::Main(argc, argv); }
