// Machine-time microbenchmarks (google-benchmark) for the sampling
// primitives, backing Table 6's "machine time < 1 second" claim for TWCS
// sample generation at MOVIE scale and beyond.

#include <benchmark/benchmark.h>

#include "kg/cluster_population.h"
#include "kg/generator.h"
#include "sampling/alias_table.h"
#include "sampling/cluster_sampler.h"
#include "sampling/reservoir.h"
#include "sampling/srs.h"
#include "util/rng.h"

namespace kgacc {
namespace {

ClusterPopulation MakePopulation(uint64_t clusters) {
  Rng rng(99);
  std::vector<uint32_t> sizes =
      GenerateLogNormalSizes(clusters, 1.55, 1.1, 5000, rng);
  return ClusterPopulation(std::move(sizes));
}

void BM_AliasTableBuild(benchmark::State& state) {
  const ClusterPopulation pop = MakePopulation(state.range(0));
  for (auto _ : state) {
    AliasTable table = AliasTable::FromSizes(pop.sizes());
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AliasTableBuild)->Arg(10000)->Arg(288770)->Arg(2000000);

void BM_AliasTableSample(benchmark::State& state) {
  const ClusterPopulation pop = MakePopulation(288770);
  const AliasTable table = AliasTable::FromSizes(pop.sizes());
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasTableSample);

void BM_TwcsSampleGeneration(benchmark::State& state) {
  // Full TWCS first+second stage for a Table 4-sized campaign (n draws).
  const ClusterPopulation pop = MakePopulation(288770);
  TwcsSampler sampler(pop, 5);
  Rng rng(11);
  for (auto _ : state) {
    auto batch = sampler.NextBatch(state.range(0), rng);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TwcsSampleGeneration)->Arg(30)->Arg(100)->Arg(1000);

void BM_SrsBatch(benchmark::State& state) {
  const ClusterPopulation pop = MakePopulation(288770);
  Rng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    SrsTripleSampler sampler(pop);  // fresh draw history per iteration.
    state.ResumeTiming();
    auto batch = sampler.NextBatch(state.range(0), rng);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SrsBatch)->Arg(200);

void BM_WeightedReservoirStream(benchmark::State& state) {
  const ClusterPopulation pop = MakePopulation(state.range(0));
  Rng rng(17);
  for (auto _ : state) {
    WeightedReservoirSampler reservoir(64);
    for (uint64_t c = 0; c < pop.NumClusters(); ++c) {
      reservoir.Offer(c, static_cast<double>(pop.ClusterSize(c)), rng);
    }
    benchmark::DoNotOptimize(reservoir);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WeightedReservoirStream)->Arg(100000)->Arg(1000000);

void BM_SecondStageSrs(benchmark::State& state) {
  Rng rng(19);
  for (auto _ : state) {
    auto offsets = SampleIndicesWithoutReplacement(5000, state.range(0), rng);
    benchmark::DoNotOptimize(offsets);
  }
}
BENCHMARK(BM_SecondStageSrs)->Arg(5)->Arg(50);

}  // namespace
}  // namespace kgacc

BENCHMARK_MAIN();
