// Reproduces Figure 5: SRS vs TWCS sample size (entities + triples) and
// annotation time across confidence levels (90% / 95% / 99%) on NELL, YAGO
// and MOVIE, with the TWCS cost-reduction ratio printed per bar.
//
// Paper shape: TWCS identifies far fewer entities than SRS at slightly more
// triples, cutting cost by up to ~20% (NELL/MOVIE); on the nearly perfect
// YAGO both designs need only tens of triples and TWCS's advantage vanishes
// (even dipping negative at 90% confidence).

#include <cstdio>

#include "bench_util.h"
#include "core/static_evaluator.h"
#include "datasets/registry.h"
#include "labels/annotator.h"

namespace kgacc {
namespace {

void RunDataset(const char* name, const Dataset& dataset, int trials,
                uint64_t seed) {
  const CostModel cost{.c1_seconds = 45.0, .c2_seconds = 25.0};
  const ClusterPopulationStats stats =
      BuildPopulationStats(dataset.View(), *dataset.oracle);

  bench::Banner(StrFormat("Figure 5 — %s (%d trials)", name, trials));
  std::printf("%-6s %-6s %14s %14s %12s %12s\n", "conf", "design",
              "entities", "triples", "time (h)", "reduction");
  bench::Rule();

  for (double confidence : {0.90, 0.95, 0.99}) {
    RunningStats srs_entities, srs_triples, srs_hours;
    RunningStats twcs_entities, twcs_triples, twcs_hours;
    for (int t = 0; t < trials; ++t) {
      EvaluationOptions options;
    // The paper's reported runs stop at ~18-24 first-stage units
    // (Tables 4/6); match that floor instead of the conservative 30.
    options.min_units = 15;
      options.confidence = confidence;
      options.seed = seed + 13 * t + static_cast<uint64_t>(confidence * 100);

      SimulatedAnnotator a1(dataset.oracle.get(), cost);
      StaticEvaluator srs(dataset.View(), &a1, options);
      const EvaluationResult r1 = srs.EvaluateSrs();
      srs_entities.Add(static_cast<double>(r1.ledger.entities_identified));
      srs_triples.Add(static_cast<double>(r1.ledger.triples_annotated));
      srs_hours.Add(r1.AnnotationHours());

      SimulatedAnnotator a2(dataset.oracle.get(), cost);
      StaticEvaluator twcs(dataset.View(), &a2, options);
      twcs.SetPopulationStatsForAutoM(&stats);
      const EvaluationResult r2 = twcs.EvaluateTwcs();
      twcs_entities.Add(static_cast<double>(r2.ledger.entities_identified));
      twcs_triples.Add(static_cast<double>(r2.ledger.triples_annotated));
      twcs_hours.Add(r2.AnnotationHours());
    }
    const double reduction = 1.0 - twcs_hours.Mean() / srs_hours.Mean();
    std::printf("%-6.0f %-6s %14s %14s %12s %12s\n", confidence * 100.0, "SRS",
                bench::MeanStd(srs_entities, 0).c_str(),
                bench::MeanStd(srs_triples, 0).c_str(),
                bench::MeanStd(srs_hours).c_str(), "");
    std::printf("%-6.0f %-6s %14s %14s %12s %11.0f%%\n", confidence * 100.0,
                "TWCS", bench::MeanStd(twcs_entities, 0).c_str(),
                bench::MeanStd(twcs_triples, 0).c_str(),
                bench::MeanStd(twcs_hours).c_str(), reduction * 100.0);
  }
}

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();

  {
    const Dataset nell = MakeNell(seed);
    RunDataset("NELL", nell, bench::Trials(200), seed);
  }
  {
    const Dataset yago = MakeYago(seed);
    RunDataset("YAGO", yago, bench::Trials(200), seed);
  }
  {
    const Dataset movie = MakeMovie(seed);
    RunDataset("MOVIE", movie, bench::Trials(50), seed);
  }

  std::printf(
      "\nPaper shape: TWCS saves up to ~20%% time on NELL/MOVIE; on YAGO the "
      "two designs are equivalent\n(both need only ~20-30 triples) and TWCS "
      "can be slightly worse at 90%% confidence.\n");
  return 0;
}
