// Reproduces Figure 1: cumulative evaluation time of a triple-level task
// (50 triples from 50 distinct entities) vs an entity-level task (50 triples
// from ~11 entity clusters, at most 5 per cluster) on MOVIE.
//
// Paper shape: triple-level grows ~linearly at c1+c2 per triple; the
// entity-level curve is markedly cheaper, with the expensive steps at each
// cluster's first triple.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cost/cost_model.h"
#include "datasets/datasets.h"
#include "sampling/cluster_sampler.h"
#include "sampling/srs.h"
#include "util/rng.h"

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();
  const CostModel cost{.c1_seconds = 45.0, .c2_seconds = 25.0};

  const Dataset movie = MakeMovie(seed);
  Rng rng(seed);

  // Triple-level task: 50 random triples, forced onto distinct subjects by
  // redrawing collisions (the paper ensures distinct subject ids).
  std::vector<TripleRef> triple_level;
  {
    SrsTripleSampler sampler(movie.View());
    std::vector<bool> seen_cluster;
    while (triple_level.size() < 50) {
      for (const TripleRef& ref : sampler.NextBatch(10, rng)) {
        if (ref.cluster >= seen_cluster.size()) {
          seen_cluster.resize(ref.cluster + 1, false);
        }
        if (!seen_cluster[ref.cluster] && triple_level.size() < 50) {
          seen_cluster[ref.cluster] = true;
          triple_level.push_back(ref);
        }
      }
    }
  }

  // Entity-level task: random clusters, up to 5 triples each, 50 in total
  // (11 clusters when all contribute 4-5 triples, as in the paper).
  std::vector<TripleRef> entity_level;
  std::vector<size_t> cluster_first_index;  // positions of per-cluster firsts.
  {
    TwcsSampler sampler(movie.View(), 5);
    while (entity_level.size() < 50) {
      for (const ClusterDraw& draw : sampler.NextBatch(1, rng)) {
        cluster_first_index.push_back(entity_level.size());
        for (uint64_t offset : draw.offsets) {
          if (entity_level.size() < 50) {
            entity_level.push_back(TripleRef{draw.cluster, offset});
          }
        }
      }
    }
  }

  const std::vector<double> triple_times =
      CumulativeAnnotationSeconds(triple_level, cost);
  const std::vector<double> entity_times =
      CumulativeAnnotationSeconds(entity_level, cost);

  bench::Banner("Figure 1: cumulative annotation time on MOVIE (seconds)");
  std::printf("%8s %16s %16s\n", "triple#", "triple-level", "entity-level");
  bench::Rule();
  for (size_t i = 0; i < 50; ++i) {
    const bool is_first =
        std::find(cluster_first_index.begin(), cluster_first_index.end(), i) !=
        cluster_first_index.end();
    std::printf("%8zu %16.0f %14.0f %s\n", i + 1, triple_times[i],
                entity_times[i], is_first ? "*" : "");
  }
  std::printf("\n(* = first triple of an entity cluster: the solid-triangle "
              "points of Fig 1)\n");
  std::printf("Totals: triple-level %s, entity-level %s -> %.0f%% cheaper\n",
              FormatDuration(triple_times.back()).c_str(),
              FormatDuration(entity_times.back()).c_str(),
              (1.0 - entity_times.back() / triple_times.back()) * 100.0);
  std::printf("Paper shape: entity-level task takes roughly half the "
              "triple-level time.\n");
  return 0;
}
