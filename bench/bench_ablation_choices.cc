// Ablations of the framework's design choices (beyond the paper's own
// experiments; DESIGN.md motivates each):
//
//   A. second-stage sampling WITH vs WITHOUT replacement — the paper argues
//      without-replacement "greatly reduces sampling variances when cluster
//      sizes are comparable [to] m" (Section 5.2.3);
//   B. the iterative batch size — small batches avoid oversampling but add
//      rounds; large batches overshoot the stopping point;
//   C. the CLT minimum-units floor — the cost of trusting the CI later;
//   D. Neyman vs proportional stratum allocation in stratified TWCS;
//   E. annotator label noise — how the MoE guarantee degrades with an
//      imperfect crowd.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/static_evaluator.h"
#include "core/stratified_evaluator.h"
#include "datasets/registry.h"
#include "kg/subset_view.h"
#include "labels/annotator.h"
#include "sampling/cluster_sampler.h"
#include "stats/allocation.h"
#include "stats/normal.h"

namespace kgacc {
namespace {

constexpr CostModel kCost{.c1_seconds = 45.0, .c2_seconds = 25.0};

// --- A: second-stage with vs without replacement. ---------------------------
void AblationSecondStageReplacement(const Dataset& nell, int trials,
                                    uint64_t seed) {
  bench::Banner("Ablation A: TWCS second-stage with vs without replacement "
                "(NELL, m=5, n=60 draws)");
  std::printf("%-22s %20s\n", "second stage", "estimator stddev");
  bench::Rule();
  for (const bool with_replacement : {false, true}) {
    RunningStats estimates;
    Rng rng(seed);
    for (int t = 0; t < trials * 4; ++t) {
      TwcsSampler sampler(nell.View(), 5);
      RunningStats draws;
      if (!with_replacement) {
        for (const ClusterDraw& draw : sampler.NextBatch(60, rng)) {
          uint64_t correct = 0;
          for (uint64_t offset : draw.offsets) {
            if (nell.oracle->IsCorrect(TripleRef{draw.cluster, offset})) {
              ++correct;
            }
          }
          draws.Add(static_cast<double>(correct) /
                    static_cast<double>(draw.offsets.size()));
        }
      } else {
        // Same first stage, but offsets drawn uniformly WITH replacement.
        WcsSampler first_stage(nell.View());
        for (const ClusterDraw& draw : first_stage.NextBatch(60, rng)) {
          const uint64_t size = nell.View().ClusterSize(draw.cluster);
          uint64_t correct = 0;
          const uint64_t picks = std::min<uint64_t>(5, size);
          for (uint64_t j = 0; j < picks; ++j) {
            const uint64_t offset = rng.UniformIndex(size);
            if (nell.oracle->IsCorrect(TripleRef{draw.cluster, offset})) {
              ++correct;
            }
          }
          draws.Add(static_cast<double>(correct) / static_cast<double>(picks));
        }
      }
      estimates.Add(draws.Mean());
    }
    std::printf("%-22s %20.5f\n",
                with_replacement ? "with replacement" : "without (fpc)",
                estimates.SampleStdDev());
  }
  std::printf("Expected: without-replacement is tighter — NELL clusters are "
              "mostly smaller than m,\nso the fpc removes nearly all "
              "within-cluster noise.\n");
}

// --- B: batch size. ----------------------------------------------------------
void AblationBatchSize(const Dataset& nell, int trials, uint64_t seed) {
  bench::Banner("Ablation B: iterative batch size (NELL, TWCS)");
  std::printf("%10s %16s %14s %12s\n", "batch", "units drawn", "time (h)",
              "rounds");
  bench::Rule();
  for (const uint64_t batch : {1ull, 5ull, 10ull, 30ull, 100ull}) {
    RunningStats units, hours, rounds;
    for (int t = 0; t < trials; ++t) {
      EvaluationOptions options;
      options.batch_units = batch;
      options.min_units = 15;
      options.seed = seed + 31 * t + batch;
      SimulatedAnnotator annotator(nell.oracle.get(), kCost);
      StaticEvaluator evaluator(nell.View(), &annotator, options);
      const EvaluationResult r = evaluator.EvaluateTwcs();
      units.Add(static_cast<double>(r.estimate.num_units));
      hours.Add(r.AnnotationHours());
      rounds.Add(static_cast<double>(r.rounds));
    }
    std::printf("%10llu %16s %14s %12.0f\n",
                static_cast<unsigned long long>(batch),
                bench::MeanStd(units, 0).c_str(),
                bench::MeanStd(hours).c_str(), rounds.Mean());
  }
  std::printf("Expected: cost grows with batch size (overshoot past the "
              "stopping point); batch=1 is cheapest\nbut needs the most "
              "rounds — the framework's small-batch default is the sweet "
              "spot.\n");
}

// --- C: minimum-units floor. --------------------------------------------------
void AblationMinUnits(const Dataset& nell, int trials, uint64_t seed) {
  bench::Banner("Ablation C: CLT minimum-units floor (NELL, TWCS)");
  const double truth = Characterize(nell).gold_accuracy;
  std::printf("%10s %14s %18s %16s\n", "min n", "time (h)", "estimate",
              "truth in CI");
  bench::Rule();
  for (const uint64_t min_units : {5ull, 15ull, 30ull, 60ull}) {
    RunningStats hours, estimates;
    int covered = 0;
    for (int t = 0; t < trials; ++t) {
      EvaluationOptions options;
      options.min_units = min_units;
      options.seed = seed + 97 * t + min_units;
      SimulatedAnnotator annotator(nell.oracle.get(), kCost);
      StaticEvaluator evaluator(nell.View(), &annotator, options);
      const EvaluationResult r = evaluator.EvaluateTwcs();
      hours.Add(r.AnnotationHours());
      estimates.Add(r.estimate.mean);
      if (std::abs(r.estimate.mean - truth) <= r.moe) ++covered;
    }
    std::printf("%10llu %14s %18s %13d/%d\n",
                static_cast<unsigned long long>(min_units),
                bench::MeanStd(hours).c_str(),
                bench::MeanStdPercent(estimates).c_str(), covered, trials);
  }
  std::printf("Expected: tiny floors are cheaper but the early CI "
              "under-covers (variance estimated\nfrom too few draws); the "
              "floor buys calibration, not accuracy.\n");
}

// --- D: stratum allocation rule. ----------------------------------------------
void AblationAllocation(int trials, uint64_t seed) {
  const Dataset syn =
      MakeMovieSyn(BmmParams{.k = 3, .c = 0.01, .sigma = 0.1}, seed);
  const Strata strata = StratifiedTwcsEvaluator::SizeStrata(syn.View(), 4);
  bench::Banner("Ablation D: Neyman vs proportional allocation "
                "(MOVIE-SYN, 4 size strata)");
  // Proportional allocation is emulated by zeroing the stddev signal: the
  // evaluator falls back to proportional when all stddevs are equal, so we
  // compare the evaluator (Neyman) against a fixed-proportional loop here.
  RunningStats neyman_hours;
  for (int t = 0; t < trials; ++t) {
    EvaluationOptions options;
    options.seed = seed + 11 * t;
    options.min_units = 15;
    SimulatedAnnotator annotator(syn.oracle.get(), kCost);
    StratifiedTwcsEvaluator evaluator(syn.View(), &annotator, options);
    neyman_hours.Add(evaluator.Evaluate(strata).AnnotationHours());
  }
  // Proportional-only: run the same campaign but allocate by weight alone
  // (Neyman with equal stddevs == proportional; emulate via one-stratum-at-
  // a-time proportional batching using the library's ProportionalAllocation).
  RunningStats proportional_hours;
  for (int t = 0; t < trials; ++t) {
    Rng rng(seed + 13 * t);
    SimulatedAnnotator annotator(syn.oracle.get(), kCost);
    std::vector<TwcsSampler> samplers;
    std::vector<SubsetView> views;
    views.reserve(strata.NumStrata());
    for (size_t h = 0; h < strata.NumStrata(); ++h) {
      views.emplace_back(syn.View(), strata.members[h]);
    }
    for (size_t h = 0; h < strata.NumStrata(); ++h) {
      samplers.emplace_back(views[h], 5);
    }
    std::vector<RunningStats> stats(strata.NumStrata());
    const auto combined_moe = [&] {
      double variance = 0.0;
      for (size_t h = 0; h < strata.NumStrata(); ++h) {
        variance += strata.weights[h] * strata.weights[h] *
                    stats[h].VarianceOfMean();
      }
      return ZCritical(0.05) * std::sqrt(variance);
    };
    uint64_t total_units = 0;
    while (true) {
      const std::vector<uint64_t> allocation =
          ProportionalAllocation(strata.weights, 10, 0);
      for (size_t h = 0; h < strata.NumStrata(); ++h) {
        for (const ClusterDraw& draw : samplers[h].NextBatch(allocation[h], rng)) {
          uint64_t correct = 0;
          for (uint64_t offset : draw.offsets) {
            if (annotator.Annotate(
                    TripleRef{views[h].ToParent(draw.cluster), offset})) {
              ++correct;
            }
          }
          stats[h].Add(static_cast<double>(correct) /
                       static_cast<double>(draw.offsets.size()));
          ++total_units;
        }
      }
      bool seeded = true;
      for (const RunningStats& s : stats) seeded = seeded && s.Count() >= 2;
      if (seeded && total_units >= 15 && combined_moe() <= 0.05) break;
      if (total_units > 100000) break;
    }
    proportional_hours.Add(annotator.ElapsedHours());
  }
  std::printf("%-16s %14s\n", "allocation", "time (h)");
  bench::Rule();
  std::printf("%-16s %14s\n", "Neyman", bench::MeanStd(neyman_hours).c_str());
  std::printf("%-16s %14s\n", "proportional",
              bench::MeanStd(proportional_hours).c_str());
  std::printf("Finding: after cum-sqrt(F) size stratification the residual "
              "per-stratum variances are already\nsimilar, so Neyman and "
              "proportional allocation tie — the stratification itself, not "
              "the\nallocation rule, carries the Table 7 gains.\n");
}

// --- E: annotator noise. --------------------------------------------------------
void AblationNoise(const Dataset& nell, int trials, uint64_t seed) {
  bench::Banner("Ablation E: annotator label noise (NELL, TWCS)");
  const double truth = Characterize(nell).gold_accuracy;
  std::printf("%10s %18s %20s\n", "noise", "estimate", "bias vs gold");
  bench::Rule();
  for (const double noise : {0.0, 0.02, 0.05, 0.10}) {
    RunningStats estimates;
    for (int t = 0; t < trials; ++t) {
      EvaluationOptions options;
      options.seed = seed + 7 * t;
      SimulatedAnnotator annotator(
          nell.oracle.get(), kCost,
          {.noise_rate = noise, .seed = seed + 1000 + t});
      StaticEvaluator evaluator(nell.View(), &annotator, options);
      estimates.Add(evaluator.EvaluateTwcs().estimate.mean);
    }
    std::printf("%9.0f%% %18s %19.1f%%\n", noise * 100.0,
                bench::MeanStdPercent(estimates).c_str(),
                (estimates.Mean() - truth) * 100.0);
  }
  std::printf("Expected: symmetric flips pull the estimate toward 50%% by "
              "~noise*(2*acc-1);\nthe framework measures the labels it is "
              "given — crowd quality is a separate concern.\n");
}

}  // namespace
}  // namespace kgacc

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::Seed();
  const int trials = bench::Trials(60);

  const Dataset nell = MakeNell(seed);
  AblationSecondStageReplacement(nell, trials, seed);
  AblationBatchSize(nell, trials, seed);
  AblationMinUnits(nell, trials, seed);
  AblationAllocation(bench::Trials(15), seed);
  AblationNoise(nell, trials, seed);
  return 0;
}
