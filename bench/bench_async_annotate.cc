// bench_async_annotate — wall-clock speedup of the asynchronous annotation
// bridge over the synchronous latency facade.
//
// Runs the same fixed evaluation campaign twice per configuration — once
// through MockLatencyAnnotator (every simulated latency elapses serially on
// the caller thread) and once through AsyncAnnotator (latencies elapse
// concurrently inside a bounded window while the pipelined engine samples
// ahead) — and reports the speedup across a latency x max_concurrent matrix.
// Every async run is checked bit-identical to its synchronous baseline:
// result fields, ledger and the full per-round trace must match exactly
// (machine_seconds excluded — it is the quantity being traded).
//
// The workload is sized for CI: --max-units triples through a
// never-converging SRS campaign, so both paths annotate exactly the same
// set. At the default 128 units a 50 ms mean latency costs ~6.4 s
// synchronously and ~0.8 s with a window of 8.
//
// Writes BENCH_async_annotate.json (kgacc-async-bench-v1) for
// kgacc_trace_check --min-async-speedup gating.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/design_registry.h"
#include "core/telemetry.h"
#include "datasets/registry.h"
#include "labels/async_annotator.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace kgacc {
namespace {

constexpr const char* kUsage = R"(bench_async_annotate — async annotation speedup matrix

  --latencies-ms A,B,..   mean simulated latencies to sweep (ms) [0,5,50]
  --concurrency A,B,..    max_concurrent window sizes to sweep   [1,8,64]
  --dataset NAME          dataset (see kgacc_eval --list-datasets) [nell]
  --design NAME           registered design                      [srs]
  --max-units N           triples annotated per campaign         [128]
  --batch-units N         units drawn per engine round           [32]
  --seed S                campaign + dataset seed                [20190923]
  --out FILE              artifact path (default: BENCH_async_annotate.json
                          under $KGACC_BENCH_JSON_DIR)
)";

struct RunOutcome {
  EvaluationResult result;
  std::vector<CampaignTrace> traces;
  double wall_seconds = 0.0;
  size_t max_in_flight = 0;
};

/// Exact comparison of everything the determinism contract covers.
/// machine_seconds is deliberately excluded: overlapping latency with
/// sampling is the whole point, so machine time legitimately differs.
bool Identical(const RunOutcome& sync, const RunOutcome& async_run) {
  const EvaluationResult& a = sync.result;
  const EvaluationResult& b = async_run.result;
  if (a.design != b.design || a.converged != b.converged ||
      a.rounds != b.rounds || a.suspended != b.suspended ||
      a.estimate.mean != b.estimate.mean ||
      a.estimate.variance_of_mean != b.estimate.variance_of_mean ||
      a.estimate.num_units != b.estimate.num_units || a.moe != b.moe ||
      a.ledger.entities_identified != b.ledger.entities_identified ||
      a.ledger.triples_annotated != b.ledger.triples_annotated ||
      a.annotation_seconds != b.annotation_seconds) {
    return false;
  }
  if (sync.traces.size() != async_run.traces.size()) return false;
  for (size_t i = 0; i < sync.traces.size(); ++i) {
    const CampaignTrace& s = sync.traces[i];
    const CampaignTrace& t = async_run.traces[i];
    if (s.design != t.design || s.label != t.label ||
        s.converged != t.converged || s.rounds.size() != t.rounds.size()) {
      return false;
    }
    for (size_t r = 0; r < s.rounds.size(); ++r) {
      const CampaignRound& x = s.rounds[r];
      const CampaignRound& y = t.rounds[r];
      if (x.round != y.round || x.cost_seconds != y.cost_seconds ||
          x.units != y.units || x.estimate != y.estimate ||
          x.ci_lower != y.ci_lower || x.ci_upper != y.ci_upper ||
          x.moe != y.moe || x.triples_annotated != y.triples_annotated ||
          x.entities_identified != y.entities_identified) {
        return false;
      }
    }
  }
  return true;
}

Result<std::vector<uint64_t>> ParseList(const std::string& csv,
                                        const char* flag) {
  std::vector<uint64_t> values;
  for (const std::string_view piece : SplitString(csv, ',')) {
    const std::string item(StripWhitespace(piece));
    if (item.empty()) continue;
    uint64_t parsed = 0;
    if (!ParseUint64(item.c_str(), &parsed)) {
      return Status::InvalidArgument(
          StrFormat("--%s: '%s' is not a number", flag, item.c_str()));
    }
    values.push_back(parsed);
  }
  if (values.empty()) {
    return Status::InvalidArgument(StrFormat("--%s: empty list", flag));
  }
  return values;
}

int Main(int argc, char** argv) {
  Result<FlagParser> flags_or = FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n", flags_or.status().message().c_str());
    return 2;
  }
  const FlagParser& flags = std::move(flags_or).value();
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const Status valid = flags.Validate(
      {"latencies-ms", "latencies_ms", "concurrency", "dataset", "design",
       "max-units", "max_units", "batch-units", "batch_units", "seed", "out",
       "help"});
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n%s", valid.message().c_str(), kUsage);
    return 2;
  }

  const std::string latencies_csv =
      flags.Has("latencies-ms") ? flags.GetString("latencies-ms", "0,5,50")
                                : flags.GetString("latencies_ms", "0,5,50");
  Result<std::vector<uint64_t>> latencies =
      ParseList(latencies_csv, "latencies-ms");
  Result<std::vector<uint64_t>> windows =
      ParseList(flags.GetString("concurrency", "1,8,64"), "concurrency");
  if (!latencies.ok() || !windows.ok()) {
    const Status& bad = !latencies.ok() ? latencies.status() : windows.status();
    std::fprintf(stderr, "error: %s\n", bad.message().c_str());
    return 2;
  }
  const std::string dataset_name = flags.GetString("dataset", "nell");
  const std::string design = flags.GetString("design", "srs");
  const uint64_t max_units =
      flags.Has("max-units") ? flags.GetUint64("max-units", 128).ValueOr(128)
                             : flags.GetUint64("max_units", 128).ValueOr(128);
  const uint64_t batch_units =
      flags.Has("batch-units") ? flags.GetUint64("batch-units", 32).ValueOr(32)
                               : flags.GetUint64("batch_units", 32).ValueOr(32);
  const uint64_t seed = flags.GetUint64("seed", bench::Seed()).ValueOr(0);
  const std::string out_path =
      flags.GetString("out", bench::ArtifactPath("BENCH_async_annotate.json"));

  Result<Dataset> dataset = MakeDatasetByName(dataset_name, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().message().c_str());
    return 1;
  }
  const KgView& view = dataset->View();

  EvaluationOptions options;
  // A target no campaign reaches pins the workload to exactly max_units
  // sampling units; both schedules then annotate the same triple set and
  // the wall-clock ratio is a pure latency-overlap measurement.
  options.moe_target = 1e-9;
  options.max_units = max_units;
  options.batch_units = batch_units;
  options.seed = seed;

  // One campaign through either facade over a fresh backend (fresh caches,
  // fresh latency request set).
  auto run_campaign = [&](double latency_seconds, uint64_t window,
                          bool async_path) -> Result<RunOutcome> {
    auto backend = std::make_unique<SimulatedAnnotator>(
        dataset->oracle.get(), CostModel{},
        SimulatedAnnotator::Options{.seed = seed});
    auto mock = std::make_unique<MockLatencyAnnotator>(
        std::move(backend),
        MockLatencyAnnotator::Options{.latency_seconds = latency_seconds,
                                      .seed = seed});
    std::unique_ptr<Annotator> annotator;
    const AsyncAnnotator* bridge = nullptr;
    if (async_path) {
      auto async = std::make_unique<AsyncAnnotator>(
          std::move(mock),
          AsyncAnnotator::Options{.max_concurrent =
                                      static_cast<size_t>(window)});
      bridge = async.get();
      annotator = std::move(async);
    } else {
      annotator = std::move(mock);
    }
    TraceRecorder recorder;
    EvaluationOptions run_options = options;
    run_options.telemetry = &recorder;
    WallTimer timer;
    Result<EvaluationResult> run = DesignRegistry::Global().Run(
        design, view, annotator.get(), run_options);
    RunOutcome outcome;
    outcome.wall_seconds = timer.ElapsedSeconds();
    KGACC_ASSIGN_OR_RETURN(outcome.result, std::move(run));
    outcome.traces = recorder.campaigns();
    if (bridge != nullptr) {
      outcome.max_in_flight = bridge->queue().MaxInFlightObserved();
    }
    return outcome;
  };

  bench::Banner(StrFormat("async annotation speedup — %s/%s, %llu units",
                          dataset_name.c_str(), design.c_str(),
                          static_cast<unsigned long long>(max_units)));
  std::printf("%10s %14s %12s %13s %9s %12s %10s\n", "latency_ms",
              "max_concurrent", "sync_s", "async_s", "speedup", "max_inflight",
              "identical");
  bench::Rule();

  JsonWriter json;
  json.BeginObject();
  json.Key("schema").String("kgacc-async-bench-v1");
  json.Key("dataset").String(dataset_name);
  json.Key("design").String(design);
  json.Key("max_units").Uint(max_units);
  json.Key("batch_units").Uint(batch_units);
  json.Key("seed").Uint(seed);
  json.Key("rows").BeginArray();

  bool all_identical = true;
  for (const uint64_t latency_ms : *latencies) {
    const double latency_seconds = static_cast<double>(latency_ms) / 1e3;
    Result<RunOutcome> sync = run_campaign(latency_seconds, 1, false);
    if (!sync.ok()) {
      std::fprintf(stderr, "error: sync run (latency %llums): %s\n",
                   static_cast<unsigned long long>(latency_ms),
                   sync.status().message().c_str());
      return 1;
    }
    for (const uint64_t window : *windows) {
      Result<RunOutcome> async_run =
          run_campaign(latency_seconds, window, true);
      if (!async_run.ok()) {
        std::fprintf(stderr, "error: async run (latency %llums, mc %llu): %s\n",
                     static_cast<unsigned long long>(latency_ms),
                     static_cast<unsigned long long>(window),
                     async_run.status().message().c_str());
        return 1;
      }
      const bool identical = Identical(*sync, *async_run);
      all_identical = all_identical && identical;
      const double speedup =
          async_run->wall_seconds > 0.0
              ? sync->wall_seconds / async_run->wall_seconds
              : 0.0;
      std::printf("%10llu %14llu %12.3f %13.3f %8.2fx %12zu %10s\n",
                  static_cast<unsigned long long>(latency_ms),
                  static_cast<unsigned long long>(window), sync->wall_seconds,
                  async_run->wall_seconds, speedup,
                  async_run->max_in_flight, identical ? "yes" : "NO");
      json.BeginObject();
      json.Key("latency_ms").Number(static_cast<double>(latency_ms));
      json.Key("max_concurrent").Uint(window);
      json.Key("sync_seconds").Number(sync->wall_seconds);
      json.Key("async_seconds").Number(async_run->wall_seconds);
      json.Key("speedup").Number(speedup);
      json.Key("max_in_flight").Uint(async_run->max_in_flight);
      json.Key("identical").Bool(identical);
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.str().c_str(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("-> %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "error: async results diverged from the synchronous "
                 "baseline (determinism contract violated)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kgacc

int main(int argc, char** argv) { return kgacc::Main(argc, argv); }
