#pragma once

// Shared helpers for the paper-experiment bench binaries. Each binary
// reproduces one table or figure of "Efficient Knowledge Graph Accuracy
// Evaluation" (Gao et al., VLDB 2019) and prints the same rows/series as
// aligned text. Trial counts default to a value that keeps every binary
// within tens of seconds; set KGACC_TRIALS to override (the paper uses
// 1000 random runs).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "stats/running_stats.h"
#include "util/string_util.h"

namespace kgacc::bench {

/// Number of random trials per configuration (env KGACC_TRIALS overrides).
inline int Trials(int default_trials) {
  if (const char* env = std::getenv("KGACC_TRIALS")) {
    uint64_t parsed = 0;
    if (ParseUint64(env, &parsed) && parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  return default_trials;
}

/// Base seed for all trials (env KGACC_SEED overrides).
inline uint64_t Seed() {
  if (const char* env = std::getenv("KGACC_SEED")) {
    uint64_t parsed = 0;
    if (ParseUint64(env, &parsed)) return parsed;
  }
  return 20190923;  // VLDB'19 camera-ready-ish date; arbitrary but fixed.
}

/// "1.85±0.60" formatting used throughout the paper's tables.
inline std::string MeanStd(const RunningStats& stats, int decimals = 2) {
  return StrFormat("%.*f±%.*f", decimals, stats.Mean(), decimals,
                   stats.SampleStdDev());
}

/// "91.6%±2.2%" formatting.
inline std::string MeanStdPercent(const RunningStats& stats, int decimals = 1) {
  return StrFormat("%.*f%%±%.*f%%", decimals, stats.Mean() * 100.0, decimals,
                   stats.SampleStdDev() * 100.0);
}

/// Path for a machine-readable bench artifact (BENCH_*.json): written into
/// $KGACC_BENCH_JSON_DIR when set, the working directory otherwise. The
/// artifacts are kgacc-trace-v1 documents; `kgacc_trace_check` validates
/// them (the same gate CI's bench-smoke job applies to the CLI-generated
/// traces — these fig benches themselves are too slow for CI and run
/// offline).
inline std::string ArtifactPath(const std::string& name) {
  const char* dir = std::getenv("KGACC_BENCH_JSON_DIR");
  const std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  return base + "/" + name;
}

/// Section banner.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Horizontal rule sized for typical tables.
inline void Rule() {
  std::printf("%s\n", std::string(94, '-').c_str());
}

}  // namespace kgacc::bench
